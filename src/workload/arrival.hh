/**
 * @file
 * Job-arrival processes (paper section III-D).
 *
 * HolDCSim drives the simulated data center with either stochastic
 * arrivals -- a Poisson process or a 2-state Markov-modulated Poisson
 * process (MMPP) for bursty load -- or with recorded traces of
 * arrival timestamps.
 */

#ifndef HOLDCSIM_WORKLOAD_ARRIVAL_HH
#define HOLDCSIM_WORKLOAD_ARRIVAL_HH

#include <memory>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace holdcsim {

/**
 * Source of job-arrival instants. Implementations return successive
 * absolute arrival ticks; exhausted() reports when a finite source
 * (trace) has run dry.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * Absolute tick of the next arrival (strictly nondecreasing
     * across calls). @pre !exhausted().
     */
    virtual Tick nextArrival() = 0;

    /** Whether the source can produce more arrivals. */
    virtual bool exhausted() const { return false; }
};

/**
 * Homogeneous Poisson arrivals with rate @p rate jobs/second:
 * exponential inter-arrival times with mean 1/rate.
 *
 * The paper relates utilization to rate for a multi-core server farm
 * as rho = lambda / (mu * nServers * nCores); use rateForUtilization
 * to configure an experiment by target utilization.
 */
class PoissonArrival : public ArrivalProcess
{
  public:
    /** @param rate arrivals per second (> 0). */
    PoissonArrival(double rate, Rng rng);

    Tick nextArrival() override;

    double rate() const { return _rate; }

    /**
     * Arrival rate (jobs/s) that produces utilization @p rho on
     * @p n_servers x @p n_cores cores whose mean service time is
     * @p mean_service_sec: lambda = rho * nServers * nCores / (1/mu).
     */
    static double rateForUtilization(double rho, unsigned n_servers,
                                     unsigned n_cores,
                                     double mean_service_sec);

  private:
    double _rate;
    Rng _rng;
    Tick _now = 0;
};

/**
 * 2-state Markov-modulated Poisson process: a bursty state with high
 * arrival rate lambda_h and a quiet state with low rate lambda_l,
 * with exponential sojourn times in each state. Burstiness is tuned
 * by the rate ratio Ra = lambda_h / lambda_l and by the fraction of
 * time spent in the bursty state.
 */
class Mmpp2Arrival : public ArrivalProcess
{
  public:
    /**
     * @param rate_high  arrival rate in the bursty state (jobs/s)
     * @param rate_low   arrival rate in the quiet state (jobs/s)
     * @param mean_high_sojourn_sec mean time per visit to bursty state
     * @param mean_low_sojourn_sec  mean time per visit to quiet state
     */
    Mmpp2Arrival(double rate_high, double rate_low,
                 double mean_high_sojourn_sec,
                 double mean_low_sojourn_sec, Rng rng);

    Tick nextArrival() override;

    /** Long-run average arrival rate of the process (jobs/s). */
    double averageRate() const;

    /** Burstiness ratio Ra = lambda_h / lambda_l. */
    double burstinessRatio() const { return _rateHigh / _rateLow; }

    /** Whether the process currently sits in the bursty state. */
    bool inBurstyState() const { return _bursty; }

  private:
    double _rateHigh, _rateLow;
    double _sojournHigh, _sojournLow;
    Rng _rng;
    bool _bursty = false; // start quiet
    Tick _now = 0;

    double currentRate() const { return _bursty ? _rateHigh : _rateLow; }
    double currentSojourn() const
    {
        return _bursty ? _sojournHigh : _sojournLow;
    }
};

/**
 * Replays a recorded list of absolute arrival ticks (trace-based
 * workload simulation). Arrival times must be nondecreasing.
 */
class TraceArrival : public ArrivalProcess
{
  public:
    explicit TraceArrival(std::vector<Tick> arrivals);

    Tick nextArrival() override;
    bool exhausted() const override { return _next >= _arrivals.size(); }

    std::size_t remaining() const { return _arrivals.size() - _next; }

  private:
    std::vector<Tick> _arrivals;
    std::size_t _next = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_WORKLOAD_ARRIVAL_HH
