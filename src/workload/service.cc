#include "service.hh"

#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace holdcsim {

FixedService::FixedService(Tick service_time)
    : _serviceTime(service_time)
{
    if (service_time == 0)
        fatal("fixed service time must be positive");
}

ExponentialService::ExponentialService(Tick mean, Rng rng)
    : _mean(mean), _rng(rng)
{
    if (mean == 0)
        fatal("exponential service mean must be positive");
}

Tick
ExponentialService::sample()
{
    Tick t = fromSeconds(_rng.exponential(toSeconds(_mean)));
    return t > 0 ? t : 1;
}

UniformService::UniformService(Tick lo, Tick hi, Rng rng)
    : _lo(lo), _hi(hi), _rng(rng)
{
    if (lo == 0 || hi < lo)
        fatal("uniform service needs 0 < lo <= hi");
}

Tick
UniformService::sample()
{
    return _rng.uniformInt(_lo, _hi);
}

BoundedParetoService::BoundedParetoService(double alpha, Tick lo, Tick hi,
                                           Rng rng)
    : _alpha(alpha), _lo(lo), _hi(hi), _rng(rng)
{
    if (alpha <= 0.0 || lo == 0 || hi <= lo)
        fatal("bounded-Pareto service needs alpha > 0, 0 < lo < hi");
}

Tick
BoundedParetoService::sample()
{
    double v = _rng.boundedPareto(_alpha, static_cast<double>(_lo),
                                  static_cast<double>(_hi));
    Tick t = static_cast<Tick>(v);
    return t > 0 ? t : 1;
}

double
BoundedParetoService::meanSeconds() const
{
    double lo = static_cast<double>(_lo);
    double hi = static_cast<double>(_hi);
    double a = _alpha;
    double mean_ticks;
    if (std::abs(a - 1.0) < 1e-12) {
        mean_ticks = (std::log(hi) - std::log(lo)) /
                     (1.0 / lo - 1.0 / hi);
    } else {
        double la = std::pow(lo, a);
        mean_ticks = la / (1.0 - std::pow(lo / hi, a)) * (a / (a - 1.0)) *
                     (1.0 / std::pow(lo, a - 1.0) -
                      1.0 / std::pow(hi, a - 1.0));
    }
    return toSeconds(static_cast<Tick>(mean_ticks));
}

EmpiricalService::EmpiricalService(std::vector<Tick> samples, Rng rng)
    : _samples(std::move(samples)), _rng(rng)
{
    if (_samples.empty())
        fatal("empirical service model needs at least one sample");
    double total = 0.0;
    for (Tick t : _samples)
        total += toSeconds(t);
    _meanSec = total / static_cast<double>(_samples.size());
}

Tick
EmpiricalService::sample()
{
    std::size_t idx = _rng.uniformInt(0, _samples.size() - 1);
    Tick t = _samples[idx];
    return t > 0 ? t : 1;
}

std::unique_ptr<ServiceModel>
makeServiceModel(const std::string &kind, Tick mean, Tick spread, Rng rng)
{
    if (kind == "fixed")
        return std::make_unique<FixedService>(mean);
    if (kind == "exponential")
        return std::make_unique<ExponentialService>(mean, rng);
    if (kind == "uniform")
        return std::make_unique<UniformService>(mean, spread, rng);
    if (kind == "pareto")
        return std::make_unique<BoundedParetoService>(1.5, mean, spread,
                                                      rng);
    fatal("unknown service model '", kind, "'");
}

} // namespace holdcsim
