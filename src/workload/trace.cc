#include "trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace holdcsim {

std::vector<Tick>
readArrivalTrace(std::istream &in)
{
    std::vector<Tick> arrivals;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream ls(line);
        double seconds;
        if (!(ls >> seconds) || seconds < 0.0)
            fatal("trace line ", lineno, ": bad timestamp");
        Tick t = fromSeconds(seconds);
        if (!arrivals.empty() && t < arrivals.back())
            fatal("trace line ", lineno, ": timestamps go backwards");
        arrivals.push_back(t);
    }
    return arrivals;
}

std::vector<Tick>
loadArrivalTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '", path, "'");
    return readArrivalTrace(in);
}

void
writeArrivalTrace(std::ostream &out, const std::vector<Tick> &arrivals)
{
    out << "# holdcsim arrival trace, seconds\n";
    for (Tick t : arrivals)
        out << toSeconds(t) << '\n';
}

namespace {

/**
 * Emit Poisson arrivals over [window_start, window_start + window)
 * at the given rate, appending to @p out in sorted order.
 */
void
emitWindow(std::vector<Tick> &out, Tick window_start, Tick window,
           double rate, Rng &rng)
{
    if (rate <= 0.0)
        return;
    // Sequential exponential gaps within the window keep the output
    // sorted without a post-sort.
    double limit = toSeconds(window);
    double t = rng.exponential(1.0 / rate);
    while (t < limit) {
        out.push_back(window_start + fromSeconds(t));
        t += rng.exponential(1.0 / rate);
    }
}

} // namespace

std::vector<Tick>
makeWikipediaTrace(const WikipediaTraceParams &params, Rng rng)
{
    if (params.baseRate <= 0.0 || params.duration == 0)
        fatal("Wikipedia trace needs positive rate and duration");
    if (params.diurnalAmplitude < 0.0 || params.diurnalAmplitude > 2.0)
        fatal("diurnal amplitude must be in [0, 2]");

    std::vector<Tick> arrivals;
    arrivals.reserve(static_cast<std::size_t>(
        params.baseRate * toSeconds(params.duration) * 1.2));

    double noise = 0.0; // AR(1) state, in relative units
    Tick burst_until = 0;
    const Tick window = 1 * sec;

    for (Tick t0 = 0; t0 < params.duration; t0 += window) {
        double phase = 2.0 * M_PI * toSeconds(t0) /
                       toSeconds(params.diurnalPeriod);
        double diurnal = 1.0 + params.diurnalAmplitude * std::sin(phase);
        noise = params.noisePersistence * noise +
                rng.normal(0.0, params.noiseLevel *
                                    std::sqrt(1.0 -
                                              params.noisePersistence *
                                                  params.noisePersistence));
        double rate = params.baseRate * diurnal * (1.0 + noise);
        if (t0 >= burst_until && rng.bernoulli(params.burstProbability))
            burst_until = t0 + params.burstLength;
        if (t0 < burst_until)
            rate *= params.burstMultiplier;
        if (rate < 0.0)
            rate = 0.0;
        Tick w = std::min(window, params.duration - t0);
        emitWindow(arrivals, t0, w, rate, rng);
    }
    return arrivals;
}

std::vector<Tick>
makeNlanrTrace(const NlanrTraceParams &params, Rng rng)
{
    if (params.baseRate <= 0.0 || params.duration == 0)
        fatal("NLANR trace needs positive rate and duration");
    if (params.levelSpread < 0.0 || params.levelSpread >= 1.0)
        fatal("level spread must be in [0, 1)");

    std::vector<Tick> arrivals;
    Tick t0 = 0;
    while (t0 < params.duration) {
        Tick level_len = fromSeconds(
            rng.exponential(toSeconds(params.meanLevelLength)));
        if (level_len == 0)
            level_len = 1 * sec;
        level_len = std::min(level_len, params.duration - t0);
        double rate = params.baseRate *
                      rng.uniform(1.0 - params.levelSpread,
                                  1.0 + params.levelSpread);
        emitWindow(arrivals, t0, level_len, rate, rng);
        t0 += level_len;
    }
    return arrivals;
}

std::vector<Tick>
rescaleTraceRate(const std::vector<Tick> &arrivals, double target_rate,
                 Rng rng)
{
    if (target_rate <= 0.0)
        fatal("target trace rate must be positive");
    double current = traceRate(arrivals);
    if (current <= 0.0)
        return arrivals;
    double factor = target_rate / current;
    std::vector<Tick> out;
    out.reserve(static_cast<std::size_t>(arrivals.size() * factor) + 1);
    for (Tick t : arrivals) {
        // Keep each arrival floor(factor) times plus a Bernoulli
        // trial on the fractional part; duplicates get a tiny jitter
        // so the queue still sees distinct arrivals.
        double f = factor;
        while (f >= 1.0) {
            out.push_back(t);
            f -= 1.0;
        }
        if (f > 0.0 && rng.bernoulli(f))
            out.push_back(t + rng.uniformInt(0, msec));
    }
    std::sort(out.begin(), out.end());
    return out;
}

double
traceRate(const std::vector<Tick> &arrivals)
{
    if (arrivals.size() < 2)
        return 0.0;
    double span = toSeconds(arrivals.back() - arrivals.front());
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(arrivals.size() - 1) / span;
}

} // namespace holdcsim
