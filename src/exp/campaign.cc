#include "campaign.hh"

#include <chrono>
#include <csignal>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "thread_pool.hh"

namespace holdcsim {

namespace {

/**
 * The campaign interrupt flag. Process-wide by necessity: signal
 * handlers cannot carry state, and one flag for every concurrently
 * running campaign is exactly the SIGINT semantics users expect.
 */
std::atomic<bool> g_interrupt{false};

void
campaignSignalHandler(int)
{
    // Async-signal-safe: a lock-free atomic store and nothing else.
    // Everything observable (cancelling cells, flushing the journal)
    // happens on the campaign threads that poll the flag.
    g_interrupt.store(true, std::memory_order_relaxed);
}

std::int64_t
monotonicNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Sleep @p ns host-nanoseconds, waking early on interrupt. */
void
interruptibleSleep(std::int64_t ns)
{
    const std::int64_t slice = 10'000'000; // 10 ms
    std::int64_t deadline = monotonicNs() + ns;
    while (!g_interrupt.load(std::memory_order_relaxed)) {
        std::int64_t left = deadline - monotonicNs();
        if (left <= 0)
            return;
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(left < slice ? left : slice));
    }
}

/** Live cancellation state of one in-flight cell. */
struct CellState {
    std::size_t point = 0;
    std::size_t replica = 0;
    std::uint64_t seed = 0;
    std::atomic<bool> cancel{false};
    /** Monotonic deadline in ns; 0 = no attempt in flight. */
    std::atomic<std::int64_t> deadlineNs{0};
};

} // namespace

CampaignRunner::CampaignRunner(CampaignOptions opts)
    : _opts(std::move(opts))
{
    if (_opts.retry.maxAttempts == 0)
        fatal("campaign needs at least one attempt per cell");
    if (_opts.replicas == 0)
        fatal("campaign needs at least one replica");
}

void
CampaignRunner::installSignalHandlers()
{
    std::signal(SIGINT, campaignSignalHandler);
    std::signal(SIGTERM, campaignSignalHandler);
}

void
CampaignRunner::requestInterrupt()
{
    g_interrupt.store(true, std::memory_order_relaxed);
}

bool
CampaignRunner::interruptRequested()
{
    return g_interrupt.load(std::memory_order_relaxed);
}

void
CampaignRunner::clearInterrupt()
{
    g_interrupt.store(false, std::memory_order_relaxed);
}

CampaignResult
CampaignRunner::run(std::size_t points, const std::string &config_text,
                    const RunFn &fn)
{
    using CellKey = std::pair<std::size_t, std::size_t>;

    CampaignResult res;

    // The journal key covers everything that shapes a cell's result:
    // the model config, the sweep, the grid and the root seed.
    std::string key_text = config_text + "\n[campaign-grid]\npoints=" +
                           std::to_string(points) + "\nreplicas=" +
                           std::to_string(_opts.replicas) +
                           "\nbase_seed=" +
                           std::to_string(_opts.baseSeed) + "\n";
    std::uint64_t hash = CampaignJournal::hashConfig(key_text);

    std::unique_ptr<CampaignJournal> journal;
    if (!_opts.journalPath.empty())
        journal = std::make_unique<CampaignJournal>(
            _opts.journalPath, hash, _opts.resume);

    std::map<CellKey, ReplicaRecord> completed;
    std::map<CellKey, QuarantineRecord> quarantined;
    std::vector<std::unique_ptr<CellState>> cells;

    for (std::size_t p = 0; p < points; ++p) {
        for (std::size_t r = 0; r < _opts.replicas; ++r) {
            std::uint64_t seed = replicaSeed(_opts.baseSeed, r);
            if (journal && journal->hasResult(p, r)) {
                const ReplicaRecord &rec = journal->result(p, r);
                if (rec.seed != seed) {
                    fatal("campaign journal '", journal->path(),
                          "' replica ", r, " of point ", p,
                          " was run with seed ", rec.seed,
                          ", this campaign uses ", seed);
                }
                completed[CellKey{p, r}] = rec;
                ++res.skipped;
                continue;
            }
            if (journal && journal->isQuarantined(p, r)) {
                // A cell that kept failing is not retried across
                // restarts either; the quarantine record survives.
                ++res.skipped;
                continue;
            }
            auto cell = std::make_unique<CellState>();
            cell->point = p;
            cell->replica = r;
            cell->seed = seed;
            cells.push_back(std::move(cell));
        }
    }
    if (journal) {
        for (const QuarantineRecord &q : journal->quarantines())
            quarantined[CellKey{q.point, q.replica}] = q;
    }

    std::mutex mu; // journal appends + result/counter updates
    std::atomic<std::uint64_t> wd_cancels{0};

    // The monitor propagates the interrupt flag into every in-flight
    // cell and enforces the wall-clock watchdog. One thread for the
    // whole campaign: cells publish their deadlines via atomics.
    std::atomic<bool> monitor_stop{false};
    std::thread monitor([&] {
        while (!monitor_stop.load(std::memory_order_relaxed)) {
            bool intr = g_interrupt.load(std::memory_order_relaxed);
            std::int64_t now = monotonicNs();
            for (auto &cell : cells) {
                if (cell->cancel.load(std::memory_order_relaxed))
                    continue;
                std::int64_t deadline =
                    cell->deadlineNs.load(std::memory_order_relaxed);
                if (intr) {
                    cell->cancel.store(true,
                                       std::memory_order_relaxed);
                } else if (deadline != 0 && now > deadline) {
                    cell->cancel.store(true,
                                       std::memory_order_relaxed);
                    wd_cancels.fetch_add(1,
                                         std::memory_order_relaxed);
                }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    });

    auto run_cell = [&](std::size_t idx) {
        CellState &cell = *cells[idx];
        std::string last_error;
        for (unsigned attempt = 1;
             attempt <= _opts.retry.maxAttempts; ++attempt) {
            if (g_interrupt.load(std::memory_order_relaxed))
                return; // unfinished: the next --resume re-runs it
            cell.cancel.store(false, std::memory_order_relaxed);
            if (_opts.watchdogSec > 0.0) {
                cell.deadlineNs.store(
                    monotonicNs() + static_cast<std::int64_t>(
                                        _opts.watchdogSec * 1e9),
                    std::memory_order_relaxed);
            }
            ReplicaLimits limits{&cell.cancel, _opts.maxEvents};
            try {
                MetricRow row =
                    fn(cell.point, cell.replica, cell.seed, limits);
                cell.deadlineNs.store(0, std::memory_order_relaxed);
                ReplicaRecord rec;
                rec.point = cell.point;
                rec.replica = cell.replica;
                rec.seed = cell.seed;
                rec.metrics = std::move(row);
                std::lock_guard<std::mutex> lock(mu);
                if (journal)
                    journal->appendResult(rec);
                completed[CellKey{cell.point, cell.replica}] =
                    std::move(rec);
                ++res.executed;
                return;
            } catch (const SimInterrupted &e) {
                cell.deadlineNs.store(0, std::memory_order_relaxed);
                if (g_interrupt.load(std::memory_order_relaxed))
                    return; // campaign-level interrupt, not a failure
                last_error = e.what();
            } catch (const std::exception &e) {
                cell.deadlineNs.store(0, std::memory_order_relaxed);
                last_error = e.what();
            } catch (...) {
                cell.deadlineNs.store(0, std::memory_order_relaxed);
                last_error = "unknown exception";
            }
            if (attempt < _opts.retry.maxAttempts) {
                {
                    std::lock_guard<std::mutex> lock(mu);
                    ++res.retries;
                }
                // Backoff ticks are nanoseconds; sleeping them on
                // the host decorrelates retries from transient host
                // contention (the wall-clock watchdog case).
                interruptibleSleep(static_cast<std::int64_t>(
                    _opts.retry.backoff(attempt, nullptr)));
            }
        }
        QuarantineRecord q;
        q.point = cell.point;
        q.replica = cell.replica;
        q.seed = cell.seed;
        q.error = last_error;
        std::lock_guard<std::mutex> lock(mu);
        warn("campaign: quarantined point ", q.point, " replica ",
             q.replica, " after ", _opts.retry.maxAttempts,
             " attempts: ", q.error);
        if (journal)
            journal->appendQuarantine(q);
        quarantined[CellKey{q.point, q.replica}] = q;
        ++res.executed;
    };

    if (_opts.jobs == 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            run_cell(i);
    } else {
        ThreadPool pool(_opts.jobs);
        ThreadPool::parallelFor(pool, cells.size(), run_cell);
    }

    monitor_stop.store(true, std::memory_order_relaxed);
    monitor.join();

    res.watchdogCancels = wd_cancels.load();
    res.interrupted = g_interrupt.load(std::memory_order_relaxed);

    // Grid order, independent of completion order and worker count.
    for (std::size_t p = 0; p < points; ++p) {
        for (std::size_t r = 0; r < _opts.replicas; ++r) {
            auto it = completed.find(CellKey{p, r});
            if (it != completed.end())
                res.records.push_back(it->second);
        }
    }
    for (const auto &[key, q] : quarantined)
        res.quarantined.push_back(q);
    return res;
}

} // namespace holdcsim
