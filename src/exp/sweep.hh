/**
 * @file
 * Parameter-sweep expansion: turn "[sweep]" config sections (or
 * --sweep key=a,b,c flags) into the cross-product of experiment
 * points, each a list of config-key assignments applied on top of a
 * base configuration.
 *
 * Example INI:
 *
 *   [sweep]
 *   server.tau_ms = 250, 500, 1000
 *   datacenter.servers = 50, 100
 *
 * expands to 6 points; point order is the odometer order of the keys
 * as declared (last key varies fastest), so runs are reproducible
 * and resumable by index.
 */

#ifndef HOLDCSIM_EXP_SWEEP_HH
#define HOLDCSIM_EXP_SWEEP_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"

namespace holdcsim {

/** One point of a sweep: the key=value assignments to apply. */
struct SweepPoint {
    std::vector<std::pair<std::string, std::string>> assignments;

    /** "key=v key=v" label (empty string for the empty sweep). */
    std::string label() const;
};

/** Cross-product expansion of per-key value lists. */
class SweepSpec
{
  public:
    /** Append a swept key with its list of values. @pre !values.empty() */
    void add(std::string key, std::vector<std::string> values);

    /**
     * Append a key from a "key=a,b,c" flag string. Throws FatalError
     * on a malformed flag (no '=', empty key or empty value list).
     */
    void addFlag(const std::string &flag);

    /** Collect every "[sweep]" section key of @p cfg, in key order. */
    static SweepSpec fromConfig(const Config &cfg);

    /** Number of swept keys. */
    std::size_t numKeys() const { return _keys.size(); }

    /** Number of points (cross-product size; 1 for the empty sweep). */
    std::size_t numPoints() const;

    /** Assignments of point @p i. @pre i < numPoints(). */
    SweepPoint point(std::size_t i) const;

    /** Apply point @p i's assignments onto @p cfg. */
    void apply(Config &cfg, std::size_t i) const;

  private:
    std::vector<std::string> _keys;
    std::vector<std::vector<std::string>> _values;
};

/** Split @p text on commas, trimming surrounding whitespace. */
std::vector<std::string> splitList(const std::string &text);

} // namespace holdcsim

#endif // HOLDCSIM_EXP_SWEEP_HH
