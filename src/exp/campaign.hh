/**
 * @file
 * Crash-tolerant campaign execution.
 *
 * A CampaignRunner wraps the (sweep point x replica) grid of the
 * experiment engine with the machinery long campaigns need to
 * survive real machines: an append-only journal of completed cells
 * (resume skips them), a per-replica watchdog (wall-clock deadline
 * plus simulated-event budget) that cancels hung replicas through
 * the simulator's cooperative interrupt flag, retry with exponential
 * backoff via fault::RetryPolicy, quarantine of cells that keep
 * failing (the campaign completes without them instead of aborting),
 * and SIGINT/SIGTERM handling that stops launching new cells,
 * cancels running ones and leaves the journal flushed so the next
 * --resume picks up exactly where the signal landed.
 *
 * Determinism contract: a cell's seed depends only on (base seed,
 * replica), never on execution order, retries or worker count -- so
 * an interrupted-and-resumed campaign aggregates to a byte-identical
 * CSV versus an uninterrupted one.
 */

#ifndef HOLDCSIM_EXP_CAMPAIGN_HH
#define HOLDCSIM_EXP_CAMPAIGN_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "experiment.hh"
#include "fault/retry_policy.hh"
#include "journal.hh"

namespace holdcsim {

/**
 * Cancellation wiring a campaign hands to each replica run. The run
 * callback installs these on its Simulator (setInterruptFlag /
 * setEventBudget) so the watchdog can cancel it cooperatively.
 */
struct ReplicaLimits {
    /** Set when the watchdog or a signal cancels this replica. */
    const std::atomic<bool> *cancel = nullptr;
    /** Simulated-event budget (0 = unlimited). */
    std::uint64_t maxEvents = 0;
};

/** Campaign execution knobs. */
struct CampaignOptions {
    /** Pool workers (1 = inline sequential reference execution). */
    unsigned jobs = 1;
    /** Replications per sweep point. */
    std::size_t replicas = 1;
    /** Root seed; replica r runs with replicaSeed(baseSeed, r). */
    std::uint64_t baseSeed = 1;
    /** Journal file ("" = no persistence; quarantine still works). */
    std::string journalPath;
    /** Replay the journal and skip already-completed cells. */
    bool resume = false;
    /** Wall-clock deadline per replica attempt (0 = no watchdog). */
    double watchdogSec = 0.0;
    /** Simulated-event budget per replica attempt (0 = unlimited). */
    std::uint64_t maxEvents = 0;
    /**
     * Attempts per cell and backoff between them. maxAttempts counts
     * total tries; backoff ticks are slept as host nanoseconds.
     */
    RetryPolicy retry;
};

/** What a campaign run accomplished. */
struct CampaignResult {
    /** Completed cells (journaled + fresh), in grid order. */
    std::vector<ReplicaRecord> records;
    /** Cells given up on after maxAttempts failures. */
    std::vector<QuarantineRecord> quarantined;
    /** Cells executed by this invocation. */
    std::size_t executed = 0;
    /** Cells skipped because the journal already had them. */
    std::size_t skipped = 0;
    /** Failed attempts that were retried. */
    std::uint64_t retries = 0;
    /** Attempts cancelled by the wall-clock watchdog. */
    std::uint64_t watchdogCancels = 0;
    /** A SIGINT/SIGTERM (or requestInterrupt) cut the campaign
     *  short; unfinished cells are absent and resumable. */
    bool interrupted = false;
};

/** Journal + watchdog + quarantine harness around a sweep grid. */
class CampaignRunner
{
  public:
    /**
     * One replica run. Must build all state locally (it is called
     * concurrently), honor @p limits by installing them on its
     * Simulator, and may throw: SimInterrupted marks a cancelled
     * attempt, anything else a failed one -- both are retried, then
     * quarantined.
     */
    using RunFn = std::function<MetricRow(
        std::size_t point, std::size_t replica, std::uint64_t seed,
        const ReplicaLimits &limits)>;

    explicit CampaignRunner(CampaignOptions opts);

    /**
     * Run the campaign over @p points sweep points. @p config_text
     * is the canonical campaign description (config + sweep spec);
     * together with the grid shape and base seed it keys the journal,
     * so a journal from a different campaign is never replayed.
     */
    CampaignResult run(std::size_t points,
                       const std::string &config_text, const RunFn &fn);

    /**
     * Install SIGINT/SIGTERM handlers that raise the campaign
     * interrupt flag (async-signal-safe: the handler only stores to
     * an atomic). Running cells are cancelled cooperatively, the
     * journal is left flushed, and run() returns with interrupted
     * set.
     */
    static void installSignalHandlers();

    /** Raise the interrupt flag directly (tests, embedding code). */
    static void requestInterrupt();

    /** Whether the interrupt flag is raised. */
    static bool interruptRequested();

    /** Lower the interrupt flag (between test campaigns). */
    static void clearInterrupt();

  private:
    CampaignOptions _opts;
};

} // namespace holdcsim

#endif // HOLDCSIM_EXP_CAMPAIGN_HH
