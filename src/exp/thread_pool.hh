/**
 * @file
 * Work-stealing thread pool for running independent simulations in
 * parallel.
 *
 * Each worker owns a deque of tasks: it pushes and pops at the back
 * (LIFO, cache-warm) and thieves steal from the front (FIFO, the
 * oldest and typically largest work items). Tasks submitted from
 * outside the pool are distributed round-robin; tasks submitted from
 * inside a worker (nested parallelism) land on that worker's own
 * deque. Shared-nothing by design: the pool moves closures, never
 * simulation state, so determinism is entirely the closures'
 * responsibility.
 */

#ifndef HOLDCSIM_EXP_THREAD_POOL_HH
#define HOLDCSIM_EXP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace holdcsim {

/** Fixed-size work-stealing task pool. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Start @p n_workers threads (0 = one per hardware thread).
     * A pool of one worker still runs tasks on that worker thread,
     * preserving identical behavior at every width.
     */
    explicit ThreadPool(unsigned n_workers = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; returns immediately. */
    void submit(Task task);

    /**
     * Enqueue @p task pinned to worker @p worker (< workers()).
     * Pinned tasks are never stolen and run before the worker touches
     * its stealable deque, in submission order. This is the
     * named-worker mode: a task can recover its worker index with
     * currentWorker(), so long-lived per-worker state (a PDES
     * partition, a replica's arena) can be owned by worker index
     * instead of by an ad-hoc thread. Do not mix pinned tasks with
     * blocking dependencies on other pinned tasks of the same worker
     * unless they are submitted in dependency order.
     */
    void submitTo(std::size_t worker, Task task);

    /**
     * Index of the worker the calling thread is, or npos when the
     * caller is not a pool worker (e.g. the thread inside wait()
     * lending a hand is NOT a worker). When nested pools exist the
     * index refers to the innermost pool the thread belongs to.
     */
    static std::size_t currentWorker();

    /** Sentinel for currentWorker(): not a worker thread. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /**
     * Block until every submitted task (including tasks submitted by
     * running tasks) has finished. The calling thread lends a hand:
     * it steals and runs queued tasks instead of spinning.
     *
     * A task that throws counts as finished -- wait() never
     * deadlocks on it and the process never std::terminate()s; the
     * exception is swallowed after being counted (and the first one
     * kept). Callers that care capture failures inside their task
     * closures; failedTasks()/firstException() are the safety net
     * for closures that let one slip.
     */
    void wait();

    /** Tasks whose closure exited by exception. */
    std::size_t failedTasks() const;

    /**
     * The first exception that escaped a task closure (nullptr when
     * none has). Stays set until the pool is destroyed; rethrow it
     * with std::rethrow_exception to surface the failure.
     */
    std::exception_ptr firstException() const;

    /** Number of worker threads. */
    unsigned workers() const { return static_cast<unsigned>(_workers.size()); }

    /** Worker count used for n_workers = 0. */
    static unsigned defaultWorkers();

    /**
     * Run fn(i) for every i in [0, n) on @p pool and wait for all of
     * them. Iterations may run in any order and concurrently; fn
     * must only touch per-index state.
     */
    template <typename Fn>
    static void
    parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn)
    {
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&fn, i] { fn(i); });
        pool.wait();
    }

  private:
    struct Worker {
        std::deque<Task> tasks;
        /** submitTo() targets; drained FIFO by the owner, never
         *  stolen. */
        std::deque<Task> pinned;
        std::mutex mutex;
    };

    void workerLoop(std::size_t self);

    /** Run @p task, absorbing any exception into the failure slot. */
    void runTask(Task &task);

    /** Pop from @p self's back, else steal; empty task when idle. */
    Task grab(std::size_t self);

    /** Steal the oldest task from any other worker's front. */
    Task steal(std::size_t thief);

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    mutable std::mutex _mutex;         // guards the fields below
    std::condition_variable _workCv;   // workers: work may be ready
    std::condition_variable _idleCv;   // waiters: pool may be idle
    std::size_t _unfinished = 0;       // submitted, not yet finished
    std::size_t _nextWorker = 0;       // round-robin submit cursor
    bool _shutdown = false;
    std::size_t _failed = 0;           // tasks that threw
    std::exception_ptr _firstError;    // earliest escaped exception
};

} // namespace holdcsim

#endif // HOLDCSIM_EXP_THREAD_POOL_HH
