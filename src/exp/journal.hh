/**
 * @file
 * Append-only campaign journal.
 *
 * Every completed (sweep point, replica) cell of a campaign is
 * appended to a JSONL file -- one self-contained JSON object per
 * line, flushed per record -- keyed by a 64-bit hash of the campaign
 * configuration plus the cell's seed. A campaign restarted with
 * --resume replays the journal, skips every cell already recorded
 * and re-executes only the rest; metric values are journaled as
 * shortest-round-trip decimal strings (formatMetricValue), so a
 * resumed campaign's aggregate CSV is byte-identical to an
 * uninterrupted run's.
 *
 * Records whose config hash does not match the current campaign are
 * ignored with a warning (a stale journal never contaminates
 * results), and a torn final line -- the crash case an append-only
 * journal exists for -- is skipped on load.
 */

#ifndef HOLDCSIM_EXP_JOURNAL_HH
#define HOLDCSIM_EXP_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "experiment.hh"

namespace holdcsim {

/** A (point, replica) cell quarantined after repeated failures. */
struct QuarantineRecord {
    std::size_t point = 0;
    std::size_t replica = 0;
    std::uint64_t seed = 0;
    /** Last failure message before giving up. */
    std::string error;
};

/** Append-only JSONL record of completed campaign cells. */
class CampaignJournal
{
  public:
    /**
     * FNV-1a 64-bit hash of @p text (the canonical campaign
     * description: config + sweep + replicas + base seed). Records
     * are only replayed into campaigns with a matching hash.
     */
    static std::uint64_t hashConfig(const std::string &text);

    /**
     * Open the journal at @p path for the campaign hashed to
     * @p config_hash. With @p resume, existing records (matching the
     * hash) are loaded and new ones appended; without it, any
     * existing file is truncated and the campaign starts clean.
     * Throws FatalError when the file cannot be opened.
     */
    CampaignJournal(const std::string &path, std::uint64_t config_hash,
                    bool resume);

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /** Whether cell (point, replica) already has a journaled result. */
    bool hasResult(std::size_t point, std::size_t replica) const;

    /** The journaled result of (point, replica). @pre hasResult(). */
    const ReplicaRecord &result(std::size_t point,
                                std::size_t replica) const;

    /** Whether (point, replica) was quarantined in a previous run. */
    bool isQuarantined(std::size_t point, std::size_t replica) const;

    /** Append (and flush) a completed cell. */
    void appendResult(const ReplicaRecord &rec);

    /** Append (and flush) a quarantined cell. */
    void appendQuarantine(const QuarantineRecord &rec);

    /** Journaled results (loaded + appended this run). */
    std::size_t resultCount() const { return _results.size(); }

    /** Journaled quarantines (loaded + appended this run). */
    std::size_t quarantineCount() const { return _quarantined.size(); }

    /** Records loaded from a previous run (resume only). */
    std::size_t loadedCount() const { return _loaded; }

    /** All journaled quarantine records. */
    std::vector<QuarantineRecord> quarantines() const;

    std::uint64_t configHash() const { return _configHash; }
    const std::string &path() const { return _path; }

  private:
    using CellKey = std::pair<std::size_t, std::size_t>;

    void load();

    std::string _path;
    std::uint64_t _configHash;
    std::ofstream _out;
    std::map<CellKey, ReplicaRecord> _results;
    std::map<CellKey, QuarantineRecord> _quarantined;
    std::size_t _loaded = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_EXP_JOURNAL_HH
