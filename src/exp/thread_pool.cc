#include "thread_pool.hh"

#include <chrono>
#include <utility>

namespace holdcsim {

namespace {

/** Which pool (if any) the current thread is a worker of. */
thread_local ThreadPool *tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

} // namespace

unsigned
ThreadPool::defaultWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(unsigned n_workers)
{
    if (n_workers == 0)
        n_workers = defaultWorkers();
    for (unsigned i = 0; i < n_workers; ++i)
        _workers.push_back(std::make_unique<Worker>());
    for (unsigned i = 0; i < n_workers; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _workCv.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    std::size_t target;
    if (tls_pool == this) {
        // Nested submit: stay on the submitting worker's deque so
        // recursive work keeps its cache locality.
        target = tls_worker;
    } else {
        std::lock_guard<std::mutex> lock(_mutex);
        target = _nextWorker;
        _nextWorker = (_nextWorker + 1) % _workers.size();
    }
    // Count the task BEFORE publishing it: once it is visible in a
    // deque any thread may run and decrement it, and wait() treats
    // _unfinished == 0 as "pool idle" -- an uncounted pending task
    // would let wait() return early.
    {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_unfinished;
    }
    {
        std::lock_guard<std::mutex> lock(
            _workers[target]->mutex);
        _workers[target]->tasks.push_back(std::move(task));
    }
    _workCv.notify_one();
}

void
ThreadPool::submitTo(std::size_t worker, Task task)
{
    Worker &w = *_workers.at(worker);
    // Count before publish, as in submit().
    {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_unfinished;
    }
    {
        std::lock_guard<std::mutex> lock(w.mutex);
        w.pinned.push_back(std::move(task));
    }
    // notify_all, not notify_one: only one specific worker can run
    // this task, and notify_one may wake a different one. The wrong
    // workers find nothing and go back to sleep.
    _workCv.notify_all();
}

std::size_t
ThreadPool::currentWorker()
{
    return tls_pool ? tls_worker : npos;
}

ThreadPool::Task
ThreadPool::steal(std::size_t thief)
{
    const std::size_t n = _workers.size();
    for (std::size_t k = 1; k <= n; ++k) {
        std::size_t victim = (thief + k) % n;
        Worker &w = *_workers[victim];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.tasks.empty()) {
            Task task = std::move(w.tasks.front());
            w.tasks.pop_front();
            return task;
        }
    }
    return {};
}

ThreadPool::Task
ThreadPool::grab(std::size_t self)
{
    Worker &own = *_workers[self];
    {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.pinned.empty()) {
            Task task = std::move(own.pinned.front());
            own.pinned.pop_front();
            return task;
        }
        if (!own.tasks.empty()) {
            Task task = std::move(own.tasks.back());
            own.tasks.pop_back();
            return task;
        }
    }
    return steal(self);
}

void
ThreadPool::runTask(Task &task)
{
    // A throwing task must fail only itself: letting the exception
    // unwind a worker thread would std::terminate the process, and
    // skipping the _unfinished decrement would deadlock wait().
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_failed;
        if (!_firstError)
            _firstError = std::current_exception();
    }
}

std::size_t
ThreadPool::failedTasks() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _failed;
}

std::exception_ptr
ThreadPool::firstException() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _firstError;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tls_pool = this;
    tls_worker = self;
    for (;;) {
        Task task = grab(self);
        if (!task) {
            std::unique_lock<std::mutex> lock(_mutex);
            if (_shutdown)
                return;
            // Re-check under the lock via a short timed wait: a task
            // may have been submitted between grab() and here.
            _workCv.wait_for(lock, std::chrono::milliseconds(1));
            continue;
        }
        runTask(task);
        std::size_t left;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            left = --_unfinished;
        }
        if (left == 0)
            _idleCv.notify_all();
    }
}

void
ThreadPool::wait()
{
    // Lend a hand: run queued tasks on this thread instead of
    // sleeping while workers are saturated.
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (_unfinished == 0)
                return;
        }
        Task task = steal(_workers.size());
        if (!task)
            break;
        runTask(task);
        std::size_t left;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            left = --_unfinished;
        }
        if (left == 0) {
            _idleCv.notify_all();
            return;
        }
    }
    // Only in-flight tasks remain; sleep until the pool drains.
    std::unique_lock<std::mutex> lock(_mutex);
    _idleCv.wait(lock, [this] { return _unfinished == 0; });
}

} // namespace holdcsim
