#include "journal.hh"

#include <cstdlib>

#include "aggregate.hh"
#include "sim/logging.hh"

namespace holdcsim {

namespace {

/** JSON string escape (quote, backslash, control characters). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Read the quoted string starting at @p pos (which must point at the
 * opening quote) into @p out, unescaping what escapeJson() emits.
 * @return the index one past the closing quote, or npos on a torn
 *         or malformed literal.
 */
std::size_t
readString(const std::string &line, std::size_t pos, std::string &out)
{
    if (pos >= line.size() || line[pos] != '"')
        return std::string::npos;
    out.clear();
    for (std::size_t i = pos + 1; i < line.size(); ++i) {
        char c = line[i];
        if (c == '"')
            return i + 1;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++i >= line.size())
            return std::string::npos;
        switch (line[i]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (i + 4 >= line.size())
                return std::string::npos;
            out += static_cast<char>(
                std::strtoul(line.substr(i + 1, 4).c_str(), nullptr,
                             16));
            i += 4;
            break;
          }
          default:
            return std::string::npos;
        }
    }
    return std::string::npos; // no closing quote: torn line
}

/** Locate the value position of `"key":` in @p line (npos if absent). */
std::size_t
findValue(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return pos;
    return pos + needle.size();
}

bool
parseString(const std::string &line, const std::string &key,
            std::string &out)
{
    std::size_t pos = findValue(line, key);
    if (pos == std::string::npos)
        return false;
    return readString(line, pos, out) != std::string::npos;
}

bool
parseUint(const std::string &line, const std::string &key,
          std::uint64_t &out)
{
    std::size_t pos = findValue(line, key);
    if (pos == std::string::npos)
        return false;
    const char *start = line.c_str() + pos;
    char *end = nullptr;
    out = std::strtoull(start, &end, 10);
    return end != start;
}

/** Parse the `"metrics":[["name","value"],...]` array. */
bool
parseMetrics(const std::string &line, MetricRow &out)
{
    std::size_t pos = findValue(line, "metrics");
    if (pos == std::string::npos || pos >= line.size() ||
        line[pos] != '[')
        return false;
    ++pos;
    out.clear();
    if (pos < line.size() && line[pos] == ']')
        return true; // empty metric row
    for (;;) {
        if (pos >= line.size() || line[pos] != '[')
            return false;
        ++pos;
        std::string name, value;
        pos = readString(line, pos, name);
        if (pos == std::string::npos || pos >= line.size() ||
            line[pos] != ',')
            return false;
        pos = readString(line, pos + 1, value);
        if (pos == std::string::npos || pos >= line.size() ||
            line[pos] != ']')
            return false;
        ++pos;
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str())
            return false;
        out.emplace_back(std::move(name), v);
        if (pos < line.size() && line[pos] == ',') {
            ++pos;
            continue;
        }
        return pos < line.size() && line[pos] == ']';
    }
}

std::string
hashHex(std::uint64_t h)
{
    static const char hex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = hex[h & 0xf];
        h >>= 4;
    }
    return out;
}

} // namespace

std::uint64_t
CampaignJournal::hashConfig(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL; // FNV prime
    }
    return h;
}

CampaignJournal::CampaignJournal(const std::string &path,
                                 std::uint64_t config_hash,
                                 bool resume)
    : _path(path), _configHash(config_hash)
{
    if (resume)
        load();
    _out.open(_path, resume ? std::ios::app : std::ios::trunc);
    if (!_out)
        fatal("cannot open campaign journal '", _path,
              "' for writing");
}

void
CampaignJournal::load()
{
    std::ifstream in(_path);
    if (!in)
        return; // nothing to resume from: a fresh campaign
    std::string line;
    std::size_t lineno = 0;
    std::size_t foreign = 0;
    std::size_t torn = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string type, config;
        std::uint64_t point = 0, replica = 0, seed = 0;
        bool shape_ok = parseString(line, "type", type) &&
                        parseString(line, "config", config) &&
                        parseUint(line, "point", point) &&
                        parseUint(line, "replica", replica) &&
                        parseUint(line, "seed", seed) &&
                        line.back() == '}';
        if (!shape_ok) {
            // The torn-write case (crash mid-append): skip, but say
            // so -- silently eating a mid-file line would hide
            // corruption.
            ++torn;
            warn("campaign journal '", _path, "' line ", lineno,
                 ": unparseable record skipped");
            continue;
        }
        if (config != hashHex(_configHash)) {
            ++foreign;
            continue;
        }
        CellKey key{static_cast<std::size_t>(point),
                    static_cast<std::size_t>(replica)};
        if (type == "result") {
            ReplicaRecord rec;
            rec.point = key.first;
            rec.replica = key.second;
            rec.seed = seed;
            if (!parseMetrics(line, rec.metrics)) {
                warn("campaign journal '", _path, "' line ", lineno,
                     ": bad metrics array skipped");
                continue;
            }
            _results[key] = std::move(rec);
            ++_loaded;
        } else if (type == "quarantine") {
            QuarantineRecord q;
            q.point = key.first;
            q.replica = key.second;
            q.seed = seed;
            parseString(line, "error", q.error);
            _quarantined[key] = std::move(q);
            ++_loaded;
        } else {
            warn("campaign journal '", _path, "' line ", lineno,
                 ": unknown record type '", type, "' skipped");
        }
    }
    if (foreign > 0)
        warn("campaign journal '", _path, "': ignored ", foreign,
             " record(s) from a different campaign configuration");
    (void)torn;
}

bool
CampaignJournal::hasResult(std::size_t point, std::size_t replica) const
{
    return _results.count(CellKey{point, replica}) != 0;
}

const ReplicaRecord &
CampaignJournal::result(std::size_t point, std::size_t replica) const
{
    return _results.at(CellKey{point, replica});
}

bool
CampaignJournal::isQuarantined(std::size_t point,
                               std::size_t replica) const
{
    return _quarantined.count(CellKey{point, replica}) != 0;
}

void
CampaignJournal::appendResult(const ReplicaRecord &rec)
{
    _out << "{\"type\":\"result\",\"config\":\""
         << hashHex(_configHash) << "\",\"point\":" << rec.point
         << ",\"replica\":" << rec.replica << ",\"seed\":" << rec.seed
         << ",\"metrics\":[";
    bool first = true;
    for (const auto &[name, value] : rec.metrics) {
        if (!first)
            _out << ',';
        first = false;
        // Values ride as shortest-round-trip strings: the double
        // parsed back on resume is bit-identical, which is what
        // makes the resumed CSV byte-identical.
        _out << "[\"" << escapeJson(name) << "\",\""
             << formatMetricValue(value) << "\"]";
    }
    _out << "]}\n";
    _out.flush();
    _results[CellKey{rec.point, rec.replica}] = rec;
}

void
CampaignJournal::appendQuarantine(const QuarantineRecord &rec)
{
    _out << "{\"type\":\"quarantine\",\"config\":\""
         << hashHex(_configHash) << "\",\"point\":" << rec.point
         << ",\"replica\":" << rec.replica << ",\"seed\":" << rec.seed
         << ",\"error\":\"" << escapeJson(rec.error) << "\"}\n";
    _out.flush();
    _quarantined[CellKey{rec.point, rec.replica}] = rec;
}

std::vector<QuarantineRecord>
CampaignJournal::quarantines() const
{
    std::vector<QuarantineRecord> out;
    out.reserve(_quarantined.size());
    for (const auto &[key, rec] : _quarantined)
        out.push_back(rec);
    return out;
}

} // namespace holdcsim
