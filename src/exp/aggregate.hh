/**
 * @file
 * Cross-replica result aggregation for parameter sweeps.
 *
 * A ResultTable collects (point, replica, metric, value) rows --
 * the long format every plotting stack ingests directly -- and
 * summarizes each (point, metric) series as mean / sample stddev /
 * 95% confidence half-width (Student t for small replica counts).
 */

#ifndef HOLDCSIM_EXP_AGGREGATE_HH
#define HOLDCSIM_EXP_AGGREGATE_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace holdcsim {

/** Sample statistics of one metric across replicas. */
struct Summary {
    std::uint64_t n = 0;
    double mean = 0.0;
    /** Sample (n-1) standard deviation; 0 for n < 2. */
    double stddev = 0.0;
    /** 95% confidence half-width (mean +/- ci95); 0 for n < 2. */
    double ci95 = 0.0;
};

/** Summarize @p values (mean, sample stddev, 95% CI half-width). */
Summary summarize(const std::vector<double> &values);

/**
 * Shortest decimal representation of @p v that parses back to
 * exactly @p v. Used for every value the result CSVs and the
 * campaign journal emit, so re-serializing a parsed-back value is
 * byte-identical (the resume-equivalence guarantee rests on it).
 */
std::string formatMetricValue(double v);

/** Long-format result store for (sweep point, replica) runs. */
class ResultTable
{
  public:
    /** Human-readable label for sweep point @p point. */
    void setPointLabel(std::size_t point, std::string label);

    /** Record one metric value of one replica run. */
    void add(std::size_t point, std::size_t replica,
             const std::string &metric, double value);

    /** All values of @p metric at @p point, in replica order. */
    std::vector<double> values(std::size_t point,
                               const std::string &metric) const;

    /** Summary of @p metric across the replicas of @p point. */
    Summary summary(std::size_t point,
                    const std::string &metric) const;

    /** Metric names in first-recorded order. */
    const std::vector<std::string> &metrics() const
    {
        return _metricOrder;
    }

    /** Number of distinct sweep points recorded. */
    std::size_t numPoints() const;

    /** Label of @p point ("point<N>" when unset). */
    std::string pointLabel(std::size_t point) const;

    /**
     * Write every raw row as long-format CSV:
     * point,label,replica,metric,value. Full precision, so equal
     * runs produce byte-equal files.
     */
    void writeCsv(std::ostream &os) const;

    /** Write per-point summaries: point,label,metric,n,mean,stddev,ci95. */
    void writeSummaryCsv(std::ostream &os) const;

  private:
    struct Row {
        std::size_t point;
        std::size_t replica;
        std::string metric;
        double value;
    };

    std::vector<Row> _rows;
    std::vector<std::string> _metricOrder;
    std::map<std::size_t, std::string> _labels;
};

} // namespace holdcsim

#endif // HOLDCSIM_EXP_AGGREGATE_HH
