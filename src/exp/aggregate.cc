#include "aggregate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace holdcsim {

namespace {

/**
 * Two-sided 97.5% Student t quantiles for df = 1..30; beyond that
 * the normal 1.96 is within half a percent.
 */
constexpr double t_table[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
    2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
    2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
    2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
};

double
tQuantile975(std::uint64_t df)
{
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return t_table[df - 1];
    return 1.96;
}

} // namespace

std::string
formatMetricValue(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double back = 0.0;
    std::sscanf(buf, "%lg", &back);
    for (int prec = 1; prec <= 16; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        std::sscanf(probe, "%lg", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

Summary
summarize(const std::vector<double> &values)
{
    Summary s;
    s.n = values.size();
    if (s.n == 0)
        return s;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    s.mean = sum / static_cast<double>(s.n);
    if (s.n < 2)
        return s;
    double m2 = 0.0;
    for (double v : values)
        m2 += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(m2 / static_cast<double>(s.n - 1));
    s.ci95 = tQuantile975(s.n - 1) * s.stddev /
             std::sqrt(static_cast<double>(s.n));
    return s;
}

void
ResultTable::setPointLabel(std::size_t point, std::string label)
{
    _labels[point] = std::move(label);
}

void
ResultTable::add(std::size_t point, std::size_t replica,
                 const std::string &metric, double value)
{
    if (std::find(_metricOrder.begin(), _metricOrder.end(), metric) ==
        _metricOrder.end()) {
        _metricOrder.push_back(metric);
    }
    _rows.push_back(Row{point, replica, metric, value});
}

std::vector<double>
ResultTable::values(std::size_t point, const std::string &metric) const
{
    // Replica order == insertion order within a point: callers record
    // replicas in index order (the engine guarantees it).
    std::vector<double> out;
    for (const Row &r : _rows) {
        if (r.point == point && r.metric == metric)
            out.push_back(r.value);
    }
    return out;
}

Summary
ResultTable::summary(std::size_t point, const std::string &metric) const
{
    return summarize(values(point, metric));
}

std::size_t
ResultTable::numPoints() const
{
    std::size_t n = 0;
    for (const Row &r : _rows)
        n = std::max(n, r.point + 1);
    return n;
}

std::string
ResultTable::pointLabel(std::size_t point) const
{
    auto it = _labels.find(point);
    if (it != _labels.end())
        return it->second;
    return "point" + std::to_string(point);
}

void
ResultTable::writeCsv(std::ostream &os) const
{
    os << "point,label,replica,metric,value\n";
    for (const Row &r : _rows) {
        os << r.point << ',' << pointLabel(r.point) << ','
           << r.replica << ',' << r.metric << ','
           << formatMetricValue(r.value) << '\n';
    }
}

void
ResultTable::writeSummaryCsv(std::ostream &os) const
{
    os << "point,label,metric,n,mean,stddev,ci95\n";
    std::size_t points = numPoints();
    for (std::size_t p = 0; p < points; ++p) {
        for (const std::string &m : _metricOrder) {
            Summary s = summary(p, m);
            if (s.n == 0)
                continue;
            os << p << ',' << pointLabel(p) << ',' << m << ','
               << s.n << ',' << formatMetricValue(s.mean) << ','
               << formatMetricValue(s.stddev) << ','
               << formatMetricValue(s.ci95) << '\n';
        }
    }
}

} // namespace holdcsim
