#include "sweep.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace holdcsim {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

} // namespace

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        std::string item = trim(text.substr(start, comma - start));
        if (!item.empty())
            out.push_back(std::move(item));
        start = comma + 1;
    }
    return out;
}

std::string
SweepPoint::label() const
{
    std::string out;
    for (const auto &[key, value] : assignments) {
        if (!out.empty())
            out += ' ';
        out += key + '=' + value;
    }
    return out;
}

void
SweepSpec::add(std::string key, std::vector<std::string> values)
{
    if (values.empty())
        HOLDCSIM_PANIC("sweep key '", key, "' has no values");
    _keys.push_back(std::move(key));
    _values.push_back(std::move(values));
}

void
SweepSpec::addFlag(const std::string &flag)
{
    std::size_t eq = flag.find('=');
    if (eq == std::string::npos || eq == 0)
        HOLDCSIM_PANIC("bad sweep flag '", flag,
                       "': expected key=a,b,c");
    std::string key = trim(flag.substr(0, eq));
    std::vector<std::string> values = splitList(flag.substr(eq + 1));
    if (key.empty() || values.empty())
        HOLDCSIM_PANIC("bad sweep flag '", flag,
                       "': expected key=a,b,c");
    add(std::move(key), std::move(values));
}

SweepSpec
SweepSpec::fromConfig(const Config &cfg)
{
    SweepSpec spec;
    const std::string prefix = "sweep.";
    for (const std::string &key : cfg.keys()) {
        if (key.rfind(prefix, 0) != 0)
            continue;
        std::string target = key.substr(prefix.size());
        spec.add(target, splitList(cfg.getString(key)));
    }
    return spec;
}

std::size_t
SweepSpec::numPoints() const
{
    std::size_t n = 1;
    for (const auto &vals : _values)
        n *= vals.size();
    return n;
}

SweepPoint
SweepSpec::point(std::size_t i) const
{
    if (i >= numPoints())
        HOLDCSIM_PANIC("sweep point ", i, " out of range");
    SweepPoint p;
    // Odometer order: the last declared key varies fastest.
    std::size_t rest = i;
    for (std::size_t k = _keys.size(); k-- > 0;) {
        std::size_t width = _values[k].size();
        std::size_t pick = rest % width;
        rest /= width;
        p.assignments.emplace_back(_keys[k], _values[k][pick]);
    }
    std::reverse(p.assignments.begin(), p.assignments.end());
    return p;
}

void
SweepSpec::apply(Config &cfg, std::size_t i) const
{
    for (const auto &[key, value] : point(i).assignments)
        cfg.set(key, value);
}

} // namespace holdcsim
