#include "experiment.hh"

#include <exception>

namespace holdcsim {

std::uint64_t
replicaSeed(std::uint64_t base, std::uint64_t replica)
{
    if (replica == 0)
        return base;
    // One splitmix64 round over base ^ (replica * golden-gamma):
    // the same mixing the Rng seeder uses for stream separation.
    std::uint64_t z = base ^ (replica * 0x9e3779b97f4a7c15ULL);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<ReplicaRecord>
ExperimentEngine::run(std::size_t points, std::size_t replicas,
                      std::uint64_t base_seed, const RunFn &fn) const
{
    std::vector<ReplicaRecord> records(points * replicas);
    for (std::size_t p = 0; p < points; ++p) {
        for (std::size_t r = 0; r < replicas; ++r) {
            ReplicaRecord &rec = records[p * replicas + r];
            rec.point = p;
            rec.replica = r;
            rec.seed = replicaSeed(base_seed, r);
        }
    }

    auto cell = [&fn, &records](std::size_t i) {
        ReplicaRecord &rec = records[i];
        // A throwing run fails only its own cell: the error is
        // captured into the record and every other cell still runs.
        try {
            rec.metrics = fn(rec.point, rec.replica, rec.seed);
        } catch (const std::exception &e) {
            rec.failed = true;
            rec.error = e.what();
        } catch (...) {
            rec.failed = true;
            rec.error = "unknown exception";
        }
    };

    if (_jobs == 1) {
        // Run inline: no pool, no threads -- the reference ordering
        // parallel runs are checked against.
        for (std::size_t i = 0; i < records.size(); ++i)
            cell(i);
    } else {
        ThreadPool pool(_jobs);
        ThreadPool::parallelFor(pool, records.size(), cell);
    }
    return records;
}

void
ExperimentEngine::tabulate(const std::vector<ReplicaRecord> &records,
                           ResultTable &table)
{
    for (const ReplicaRecord &rec : records) {
        if (rec.failed)
            continue;
        for (const auto &[name, value] : rec.metrics)
            table.add(rec.point, rec.replica, name, value);
    }
}

} // namespace holdcsim
