/**
 * @file
 * The parallel experiment engine: runs the (sweep point x replica)
 * grid of independent simulations across a work-stealing thread
 * pool, shared-nothing -- each run builds its own Simulator, config
 * and stats inside the run callback -- with deterministic
 * per-replica seeding so an N-way parallel run is stat-for-stat
 * identical to the sequential one.
 *
 * The engine does not know what a DataCenter is: the run callback
 * receives (point, replica, seed) and returns an ordered list of
 * named metric values. Everything simulation-specific stays with the
 * caller; everything scheduling/aggregation-specific stays here.
 */

#ifndef HOLDCSIM_EXP_EXPERIMENT_HH
#define HOLDCSIM_EXP_EXPERIMENT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "aggregate.hh"
#include "thread_pool.hh"

namespace holdcsim {

/**
 * Deterministic seed of replica @p replica of a base-seeded
 * experiment. Replica 0 keeps the base seed (a 1-replica engine run
 * reproduces the plain run exactly); higher replicas get a
 * splitmix64-mixed stream so replica seeds never collide or
 * correlate. A function of (base, replica) only -- never of worker
 * count or execution order.
 */
std::uint64_t replicaSeed(std::uint64_t base, std::uint64_t replica);

/** Ordered metric name/value pairs returned by one run. */
using MetricRow = std::vector<std::pair<std::string, double>>;

/** Outcome of one (point, replica) cell. */
struct ReplicaRecord {
    std::size_t point = 0;
    std::size_t replica = 0;
    std::uint64_t seed = 0;
    MetricRow metrics;
    /** The run threw instead of returning metrics. */
    bool failed = false;
    /** what() of the escaped exception (failed runs only). */
    std::string error;
};

/** Runs point x replica grids of independent simulations. */
class ExperimentEngine
{
  public:
    /**
     * One simulation run: build everything locally from the
     * arguments, run, return metrics. Must not touch shared mutable
     * state -- it is called concurrently from pool workers.
     */
    using RunFn = std::function<MetricRow(
        std::size_t point, std::size_t replica, std::uint64_t seed)>;

    /** @param jobs worker threads (0 = one per hardware thread). */
    explicit ExperimentEngine(unsigned jobs = 1) : _jobs(jobs) {}

    /**
     * Run @p replicas replications of each of @p points sweep
     * points; replica r of every point is seeded with
     * replicaSeed(base_seed, r). Records are returned in (point,
     * replica) order regardless of completion order, and their
     * contents are independent of the worker count.
     */
    std::vector<ReplicaRecord> run(std::size_t points,
                                   std::size_t replicas,
                                   std::uint64_t base_seed,
                                   const RunFn &fn) const;

    /** Fill @p table from @p records (all rows, in grid order). */
    static void tabulate(const std::vector<ReplicaRecord> &records,
                         ResultTable &table);

    unsigned jobs() const { return _jobs; }

  private:
    unsigned _jobs;
};

} // namespace holdcsim

#endif // HOLDCSIM_EXP_EXPERIMENT_HH
