/**
 * @file
 * The unit of exploration: one explicit fault schedule.
 *
 * A FaultSchedule is a finite list of (target, down, up) episodes
 * over a bounded horizon -- the "input word" the model-checking
 * explorer enumerates, runs through the deterministic simulator, and
 * delta-debugs down to a minimal reproducer. Schedules have a
 * canonical text form (exactly the fault-trace format
 * TraceFaultModel::fromFile() parses, sorted) and a stable 64-bit
 * hash over it, used for deduplication across strategy tiers and for
 * campaign-journal keying, so interrupted explorations resume
 * without re-running completed schedules.
 */

#ifndef HOLDCSIM_MC_FAULT_SCHEDULE_HH
#define HOLDCSIM_MC_FAULT_SCHEDULE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault_model.hh"

namespace holdcsim::mc {

/** An explicit, bounded fault schedule (the explored object). */
struct FaultSchedule {
    std::vector<ScheduledFault> faults;

    /**
     * Sort episodes into the canonical order (downAt, target, upAt).
     * Replay semantics are order-independent -- the FaultManager
     * plays each target's episodes by time -- so sorting never
     * changes behavior, only the text and hash.
     */
    void canonicalize();

    /**
     * The canonical text: one fault-trace line per episode, sorted.
     * Parseable by TraceFaultModel::fromFile() and fromTraceText().
     */
    std::string canonicalText() const;

    /**
     * FNV-1a 64-bit hash of canonicalText(). Stable across runs and
     * platforms; the dedup and journal key.
     */
    std::uint64_t hash() const;

    bool empty() const { return faults.empty(); }
    std::size_t size() const { return faults.size(); }

    bool
    operator==(const FaultSchedule &o) const
    {
        return faults == o.faults;
    }

    /** Parse from fault-trace text (@p where prefixes diagnostics). */
    static FaultSchedule fromTraceText(const std::string &text,
                                       const std::string &where);

    /** Parse a fault-trace file (same format as TraceFaultModel). */
    static FaultSchedule fromTraceFile(const std::string &path);
};

/**
 * Write @p schedule as a replayable repro file: @p header_lines (one
 * "# "-prefixed comment each, e.g. the oracle verdict and the exact
 * replay command) followed by the canonical trace lines.
 */
void writeReproFile(std::ostream &os, const FaultSchedule &schedule,
                    const std::vector<std::string> &header_lines);

} // namespace holdcsim::mc

#endif // HOLDCSIM_MC_FAULT_SCHEDULE_HH
