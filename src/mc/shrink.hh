/**
 * @file
 * Delta-debugging schedule minimization.
 *
 * Given a failing fault schedule and a deterministic oracle ("does
 * this schedule still fail the same way"), shrinkSchedule() runs the
 * classic ddmin algorithm over the episode list: try chunks and
 * chunk-complements at doubling granularity, keep any subset that
 * still fails, until the schedule is 1-minimal -- removing any single
 * episode makes the failure vanish. Because the simulator is
 * deterministic, one oracle run per candidate is a proof, not a
 * sample; the result is the smallest reproducer the episode lattice
 * contains.
 */

#ifndef HOLDCSIM_MC_SHRINK_HH
#define HOLDCSIM_MC_SHRINK_HH

#include <cstddef>
#include <functional>

#include "fault_schedule.hh"

namespace holdcsim::mc {

/** Outcome of a shrink: the 1-minimal schedule and the cost. */
struct ShrinkResult {
    FaultSchedule minimal;
    /** Oracle invocations the minimization spent. */
    std::size_t oracleRuns = 0;
};

/**
 * ddmin @p failing down to a 1-minimal failing schedule.
 * @p still_fails must return true iff its argument reproduces the
 * original failure; it is never called on the empty schedule.
 * @p failing itself must fail (the caller already proved it).
 */
ShrinkResult
shrinkSchedule(const FaultSchedule &failing,
               const std::function<bool(const FaultSchedule &)>
                   &still_fails);

} // namespace holdcsim::mc

#endif // HOLDCSIM_MC_SHRINK_HH
