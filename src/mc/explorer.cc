#include "explorer.hh"

#include <atomic>
#include <fstream>
#include <ostream>

#include "dc/datacenter.hh"
#include "dc/workload_config.hh"
#include "shrink.hh"
#include "sim/logging.hh"
#include "strategy.hh"

namespace holdcsim::mc {

const char *
toString(OracleOutcome::Kind kind)
{
    switch (kind) {
      case OracleOutcome::Kind::pass:      return "pass";
      case OracleOutcome::Kind::violation: return "violation";
      case OracleOutcome::Kind::hang:      return "hang";
      case OracleOutcome::Kind::error:     return "error";
    }
    return "?";
}

std::string
failureSignature(const OracleOutcome &outcome)
{
    std::string sig = toString(outcome.kind);
    if (outcome.kind == OracleOutcome::Kind::violation) {
        // "invariant 'name' violated: <live counters>" -> keep the
        // name; "event 'x' scheduled in the past (10 < 20)" -> keep
        // the text before the tick values.
        std::string head = outcome.what;
        auto pos = head.find("' violated");
        if (pos == std::string::npos)
            pos = head.find('(');
        if (pos != std::string::npos)
            head.erase(pos);
        sig += "|" + head;
    }
    return sig;
}

OracleOutcome
runScheduleOracle(const Config &cfg, const FaultSchedule &schedule,
                  std::uint64_t seed, const ReplicaLimits &limits)
{
    try {
        DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
        dc_cfg.seed = seed;
        dc_cfg.serverProfile = serverProfileFromConfig(cfg);
        dc_cfg.switchProfile = switchProfileFromConfig(cfg);
        // The oracle configuration: the exact schedule under test,
        // every invariant armed and fatal.
        dc_cfg.fault.enabled = true;
        dc_cfg.fault.useSchedule = true;
        dc_cfg.fault.schedule = schedule.faults;
        dc_cfg.audit.enabled = true;
        dc_cfg.audit.fatal = true;

        DataCenter dc(dc_cfg);
        dc.sim().setInterruptFlag(limits.cancel);
        std::uint64_t budget = dc_cfg.mc.eventBudget;
        if (limits.maxEvents != 0 &&
            (budget == 0 || limits.maxEvents < budget))
            budget = limits.maxEvents;
        dc.sim().setEventBudget(budget);

        ConfiguredWorkload wl = makeWorkload(cfg, dc.config(), seed);
        JobGenerator &jobs = *wl.jobs;
        dc.pump(std::move(wl.arrivals), jobs, wl.maxJobs, wl.until);
        if (wl.until != maxTick)
            dc.runUntil(wl.until);
        dc.run();
        // Closing audit: catch violations whose periodic window the
        // drained queue never reached.
        if (dc.auditor())
            dc.auditor()->auditNow();
        dc.finishStats();
        return {};
    } catch (const SimAbortError &e) {
        return {OracleOutcome::Kind::violation, e.what()};
    } catch (const SimInterrupted &e) {
        // A raised cancel flag is the campaign (watchdog, SIGINT)
        // talking, not the plant: propagate so the runner records a
        // cancelled attempt. Budget trips are findings.
        if (limits.cancel &&
            limits.cancel->load(std::memory_order_relaxed))
            throw;
        return {OracleOutcome::Kind::hang, e.what()};
    } catch (const FatalError &e) {
        return {OracleOutcome::Kind::error, e.what()};
    }
}

namespace {

/** Canonical campaign text: config + schedule identities. */
std::string
explorationKey(const Config &cfg, const std::string &strategy,
               const std::vector<FaultSchedule> &schedules)
{
    std::string text;
    for (const std::string &key : cfg.keys())
        text += key + "=" + cfg.getString(key, "") + "\n";
    text += "mc-strategy=" + strategy + "\n";
    for (const FaultSchedule &s : schedules)
        text += "mc-schedule=" + std::to_string(s.hash()) + "\n";
    return text;
}

} // namespace

ExplorerReport
exploreFaultSchedules(const Config &cfg, const ExplorerOptions &opts)
{
    DataCenterConfig dc_cfg = DataCenterConfig::fromConfig(cfg);
    const auto &mcc = dc_cfg.mc;

    StrategySpace space;
    space.horizon = mcc.horizon;
    space.repair = mcc.repair;
    space.maxFaults = mcc.maxFaults;
    space.budget = mcc.budget;
    space.seed = dc_cfg.seed;
    space.boundaryTimes = boundaryTimes(dc_cfg, mcc.horizon);
    std::size_t numSwitches = 0, numLinks = 0;
    if (dc_cfg.fault.faultSwitches || dc_cfg.fault.faultLinks) {
        // Fabric component counts only exist on a materialized plant;
        // build one probe instance to read them off.
        DataCenterConfig probeCfg = dc_cfg;
        probeCfg.fault.enabled = false;
        DataCenter probe(probeCfg);
        if (probe.network()) {
            numSwitches = probe.network()->numSwitches();
            numLinks = probe.network()->topology().numLinks();
        }
    }
    space.targets = faultTargets(dc_cfg, numSwitches, numLinks);

    std::vector<FaultSchedule> schedules =
        generateSchedules(mcc.strategy, space);

    ExplorerReport report;
    report.schedules = schedules.size();
    if (opts.log) {
        *opts.log << "mc: strategy " << mcc.strategy << ", "
                  << schedules.size() << " schedules over "
                  << space.targets.size() << " targets x "
                  << space.boundaryTimes.size() << " instants, horizon "
                  << toSeconds(mcc.horizon) << " s\n";
    }
    if (schedules.empty())
        return report;

    CampaignOptions copts;
    copts.jobs = opts.jobs;
    copts.replicas = 1;
    copts.baseSeed = dc_cfg.seed;
    copts.journalPath = opts.journalPath;
    copts.resume = opts.resume;
    copts.watchdogSec = dc_cfg.campaign.watchdogSec;
    // Deterministic oracles never benefit from retries: a failure
    // is a finding, not flakiness.
    copts.retry.maxAttempts = 1;

    CampaignRunner runner(copts);
    CampaignResult res = runner.run(
        schedules.size(), explorationKey(cfg, mcc.strategy, schedules),
        [&](std::size_t point, std::size_t, std::uint64_t seed,
            const ReplicaLimits &limits) {
            OracleOutcome oc = runScheduleOracle(cfg, schedules[point],
                                                seed, limits);
            MetricRow row;
            row.emplace_back("mc_failed", oc.failed() ? 1.0 : 0.0);
            row.emplace_back(
                "mc_kind", static_cast<double>(
                               static_cast<int>(oc.kind)));
            row.emplace_back(
                "mc_faults",
                static_cast<double>(schedules[point].size()));
            return row;
        });

    report.executed = res.executed;
    report.skipped = res.skipped;

    // First failing schedule in grid order -- independent of worker
    // count and of which cells the journal already had.
    std::size_t firstFail = schedules.size();
    for (const ReplicaRecord &r : res.records) {
        if (r.failed)
            continue;
        for (const auto &[name, value] : r.metrics) {
            if (name == "mc_failed" && value != 0.0) {
                ++report.failures;
                firstFail = std::min(firstFail, r.point);
                break;
            }
        }
    }
    if (firstFail == schedules.size())
        return report;

    report.found = true;
    report.failing = schedules[firstFail];
    std::uint64_t seed = replicaSeed(dc_cfg.seed, 0);

    // Re-run the finding to capture its message, then shrink against
    // the same failure signature.
    OracleOutcome original =
        runScheduleOracle(cfg, report.failing, seed);
    if (!original.failed()) {
        // Journal/model mismatch (e.g. resumed against an edited
        // config that no longer fails): report what we know.
        report.outcome = original;
        report.minimal = report.failing;
        return report;
    }
    std::string signature = failureSignature(original);
    if (opts.log) {
        *opts.log << "mc: schedule " << firstFail << " fails ("
                  << toString(original.kind) << "): " << original.what
                  << "\nmc: shrinking " << report.failing.size()
                  << "-episode schedule...\n";
    }
    ShrinkResult shrunk = shrinkSchedule(
        report.failing, [&](const FaultSchedule &cand) {
            OracleOutcome oc = runScheduleOracle(cfg, cand, seed);
            return oc.failed() && failureSignature(oc) == signature;
        });
    report.minimal = shrunk.minimal;
    report.shrinkRuns = shrunk.oracleRuns;
    report.outcome = runScheduleOracle(cfg, report.minimal, seed);

    report.replayCommand = "holdcsim --config " + opts.configPath +
                           " --replay-schedule " +
                           (opts.reproPath.empty() ? "<repro.fault>"
                                                   : opts.reproPath);
    if (!opts.reproPath.empty()) {
        std::ofstream out(opts.reproPath);
        if (!out)
            fatal("cannot write reproducer '", opts.reproPath, "'");
        writeReproFile(
            out, report.minimal,
            {"holdcsim mc minimal reproducer",
             "verdict: " + std::string(toString(report.outcome.kind)) +
                 ": " + report.outcome.what,
             "schedule hash: " + std::to_string(report.minimal.hash()),
             "shrunk from " + std::to_string(report.failing.size()) +
                 " episodes in " + std::to_string(report.shrinkRuns) +
                 " oracle runs",
             "replay: " + report.replayCommand});
        report.reproPath = opts.reproPath;
    }
    if (opts.log) {
        *opts.log << "mc: minimal reproducer: "
                  << report.minimal.size() << " episode(s), "
                  << report.shrinkRuns << " shrink runs\n"
                  << report.minimal.canonicalText()
                  << "mc: replay: " << report.replayCommand << "\n";
    }
    return report;
}

} // namespace holdcsim::mc
