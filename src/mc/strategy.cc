#include "strategy.hh"

#include <algorithm>
#include <functional>
#include <set>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace holdcsim::mc {

namespace {

/** Append @p t if it lands inside (0, horizon]. */
void
addInstant(std::vector<Tick> &times, Tick t, Tick horizon)
{
    if (t > 0 && t <= horizon)
        times.push_back(t);
}

/** Dedup @p schedules by canonical hash, keeping first-seen order,
 *  and truncate to @p budget (0 = unlimited). */
std::vector<FaultSchedule>
dedupAndCap(std::vector<FaultSchedule> schedules, std::uint64_t budget)
{
    std::set<std::uint64_t> seen;
    std::vector<FaultSchedule> out;
    for (FaultSchedule &s : schedules) {
        s.canonicalize();
        if (!seen.insert(s.hash()).second)
            continue;
        out.push_back(std::move(s));
        if (budget != 0 && out.size() >= budget)
            break;
    }
    return out;
}

/** One episode: @p target down over [down, down + repair). */
ScheduledFault
episode(const FaultTarget &target, Tick down, Tick repair)
{
    return ScheduledFault{target, FaultRecord{down, down + repair}};
}

std::vector<FaultSchedule>
boundaryTier(const StrategySpace &sp)
{
    std::vector<FaultSchedule> out;
    for (Tick t : sp.boundaryTimes) {
        for (const FaultTarget &target : sp.targets) {
            FaultSchedule s;
            s.faults.push_back(episode(target, t, sp.repair));
            out.push_back(std::move(s));
        }
    }
    return out;
}

std::vector<FaultSchedule>
pairwiseTier(const StrategySpace &sp)
{
    // Inter-fault offsets spanning the coincidence spectrum: exactly
    // coincident, one tick apart (ordering race), half-overlapped,
    // back-to-back (repair boundary), and fully disjoint.
    const Tick offsets[] = {0, 1, sp.repair / 2, sp.repair,
                            sp.repair + msec};
    std::vector<FaultSchedule> out;
    for (std::size_t a = 0; a < sp.targets.size(); ++a) {
        for (std::size_t b = 0; b < sp.targets.size(); ++b) {
            if (a == b)
                continue;
            for (Tick t : sp.boundaryTimes) {
                for (Tick d : offsets) {
                    if (t + d > sp.horizon)
                        continue;
                    FaultSchedule s;
                    s.faults.push_back(
                        episode(sp.targets[a], t, sp.repair));
                    s.faults.push_back(
                        episode(sp.targets[b], t + d, sp.repair));
                    out.push_back(std::move(s));
                }
            }
        }
    }
    return out;
}

std::vector<FaultSchedule>
exhaustiveTier(const StrategySpace &sp)
{
    // Atoms of the discretized space: every (target, instant) pair.
    struct Atom {
        std::size_t target;
        Tick down;
    };
    std::vector<Atom> atoms;
    for (std::size_t i = 0; i < sp.targets.size(); ++i)
        for (Tick t : sp.boundaryTimes)
            atoms.push_back({i, t});

    // Every subset of up to maxFaults atoms whose per-target episodes
    // do not overlap, enumerated in lexicographic index order so the
    // list is stable. Recursion depth is bounded by maxFaults.
    std::vector<FaultSchedule> out;
    std::vector<std::size_t> picked;
    auto overlaps = [&](const Atom &atom) {
        for (std::size_t idx : picked) {
            const Atom &other = atoms[idx];
            if (other.target != atom.target)
                continue;
            Tick lo = std::min(other.down, atom.down);
            Tick hi = std::max(other.down, atom.down);
            if (lo + sp.repair > hi)
                return true;
        }
        return false;
    };
    std::function<void(std::size_t)> expand = [&](std::size_t from) {
        for (std::size_t i = from; i < atoms.size(); ++i) {
            if (overlaps(atoms[i]))
                continue;
            picked.push_back(i);
            FaultSchedule s;
            for (std::size_t idx : picked) {
                s.faults.push_back(episode(sp.targets[atoms[idx].target],
                                           atoms[idx].down, sp.repair));
            }
            out.push_back(std::move(s));
            if (picked.size() < sp.maxFaults)
                expand(i + 1);
            picked.pop_back();
        }
    };
    expand(0);
    return out;
}

std::vector<FaultSchedule>
randomTier(const StrategySpace &sp)
{
    Rng rng(sp.seed, "mc.random_tier");
    std::uint64_t want = sp.budget != 0 ? sp.budget : 256;
    std::vector<FaultSchedule> out;
    // Oversample: duplicates and dropped-overlap episodes thin the
    // yield, and dedupAndCap trims back down to the budget.
    for (std::uint64_t n = 0; n < want * 2; ++n) {
        FaultSchedule s;
        auto faults = static_cast<unsigned>(
            rng.uniformInt(1, sp.maxFaults));
        for (unsigned f = 0; f < faults; ++f) {
            const FaultTarget &target = sp.targets[rng.uniformInt(
                0, sp.targets.size() - 1)];
            Tick down;
            if (!sp.boundaryTimes.empty() && rng.bernoulli(0.5)) {
                // Boundary bias: at or one tick around an instant.
                Tick base = sp.boundaryTimes[rng.uniformInt(
                    0, sp.boundaryTimes.size() - 1)];
                std::uint64_t jitter = rng.uniformInt(0, 2);
                down = base + jitter;
                if (down > 1)
                    down -= 1;
            } else {
                down = rng.uniformInt(1, sp.horizon);
            }
            if (down > sp.horizon)
                continue;
            Tick repair = sp.repair * rng.uniformInt(1, 2);
            ScheduledFault cand = episode(target, down, repair);
            bool clash = false;
            for (const ScheduledFault &have : s.faults) {
                if (have.target < cand.target ||
                    cand.target < have.target)
                    continue;
                if (cand.record.downAt < have.record.upAt &&
                    have.record.downAt < cand.record.upAt)
                    clash = true;
            }
            if (!clash)
                s.faults.push_back(cand);
        }
        if (!s.empty())
            out.push_back(std::move(s));
    }
    return out;
}

} // namespace

std::vector<Tick>
boundaryTimes(const DataCenterConfig &cfg, Tick horizon)
{
    std::vector<Tick> times;
    if (cfg.controller == DataCenterConfig::Controller::delayTimer &&
        cfg.delayTimerTau != maxTick) {
        // The suspend decision edge: just at and just after tau, the
        // window where a crash races the S3 entry.
        addInstant(times, cfg.delayTimerTau, horizon);
        addInstant(times, cfg.delayTimerTau + 1, horizon);
    }
    // Retry-timeout edges (the retry machinery runs whenever the
    // explorer injects faults, whether or not [fault] was configured).
    addInstant(times, cfg.fault.retryBackoffBase, horizon);
    addInstant(times, cfg.fault.retryBackoffBase + 1, horizon);
    if (cfg.fault.taskTimeout != 0) {
        addInstant(times, cfg.fault.taskTimeout, horizon);
        addInstant(times, cfg.fault.taskTimeout + 1, horizon);
    }
    if (cfg.orch.enabled) {
        // Reconcile boundaries are where migrations start; their
        // stop-and-copy windows trail the decision.
        addInstant(times, cfg.orch.reconcilePeriod, horizon);
        addInstant(times, cfg.orch.reconcilePeriod + 1, horizon);
        addInstant(times, 2 * cfg.orch.reconcilePeriod, horizon);
    }
    if (cfg.audit.enabled) {
        addInstant(times, cfg.audit.period, horizon);
        addInstant(times, cfg.audit.period + 1, horizon);
    }
    // Coarse spread so minimal configs still cover the horizon.
    for (unsigned k = 1; k <= 4; ++k)
        addInstant(times, horizon / 8 * k, horizon);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    return times;
}

std::vector<FaultTarget>
faultTargets(const DataCenterConfig &cfg, std::size_t num_switches,
             std::size_t num_links)
{
    std::vector<FaultTarget> targets;
    if (cfg.fault.faultServers) {
        for (std::size_t i = 0; i < cfg.nServers; ++i)
            targets.push_back({FaultKind::server, i, 0});
    }
    if (cfg.fault.faultSwitches) {
        for (std::size_t i = 0; i < num_switches; ++i)
            targets.push_back({FaultKind::swtch, i, 0});
    }
    if (cfg.fault.faultLinks) {
        for (std::size_t l = 0; l < num_links; ++l)
            targets.push_back({FaultKind::link, l, 0});
    }
    return targets;
}

std::vector<FaultSchedule>
generateSchedules(const std::string &strategy,
                  const StrategySpace &space)
{
    if (space.targets.empty())
        fatal("fault-schedule strategy needs at least one target");
    if (space.boundaryTimes.empty())
        fatal("fault-schedule strategy needs at least one instant");
    std::vector<FaultSchedule> raw;
    if (strategy == "boundary")
        raw = boundaryTier(space);
    else if (strategy == "pairwise")
        raw = pairwiseTier(space);
    else if (strategy == "exhaustive")
        raw = exhaustiveTier(space);
    else if (strategy == "random")
        raw = randomTier(space);
    else
        fatal("unknown fault-schedule strategy '", strategy, "'");
    return dedupAndCap(std::move(raw), space.budget);
}

} // namespace holdcsim::mc
