/**
 * @file
 * The fault-schedule explorer: model checking over fault timings.
 *
 * exploreFaultSchedules() enumerates a strategy tier's schedules
 * (src/mc/strategy.hh), runs each one through a fully deterministic
 * DataCenter with the InvariantAuditor always on as the oracle, and
 * classifies every run: pass, invariant violation / simulator abort,
 * hang (simulated-event budget tripped -- livelock), or model error.
 * The campaign rides the experiment engine's CampaignRunner, so
 * exploration is parallel across schedules, journaled, and resumable
 * -- an interrupted exploration picks up at the first unexplored
 * schedule, keyed by the schedule set's canonical hashes.
 *
 * On the first failure (in deterministic grid order, independent of
 * worker count), the failing schedule is delta-debugged
 * (src/mc/shrink.hh) against the same-failure-signature oracle down
 * to a 1-minimal reproducer, written as a TraceFaultModel-loadable
 * file whose header carries the verdict and the exact replay command.
 */

#ifndef HOLDCSIM_MC_EXPLORER_HH
#define HOLDCSIM_MC_EXPLORER_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "exp/campaign.hh"
#include "fault_schedule.hh"
#include "sim/config.hh"

namespace holdcsim::mc {

/** What one schedule did to the plant. */
struct OracleOutcome {
    enum class Kind {
        /** Ran to completion, every audit green. */
        pass,
        /** InvariantAuditor violation or simulator abort. */
        violation,
        /** Simulated-event budget tripped: livelock. */
        hang,
        /** The model failed outside the simulator (FatalError). */
        error,
    };
    Kind kind = Kind::pass;
    /** The abort/violation/interrupt message (empty for pass). */
    std::string what;

    bool failed() const { return kind != Kind::pass; }
};

const char *toString(OracleOutcome::Kind kind);

/**
 * Stable identity of a failure: the kind plus the violated
 * invariant's name (counters and tick values stripped), so shrinking
 * keeps only subsets that reproduce the *same* failure, not any
 * failure.
 */
std::string failureSignature(const OracleOutcome &outcome);

/**
 * Run @p schedule through the plant described by @p cfg under
 * @p seed: audit always on and fatal, the schedule injected through
 * a ScheduleFaultModel, the simulated-event budget from [mc]
 * event_budget as the hang oracle. @p limits carries campaign
 * cancellation; a genuine external cancel rethrows SimInterrupted,
 * every deterministic failure is returned as an outcome.
 */
OracleOutcome runScheduleOracle(const Config &cfg,
                                const FaultSchedule &schedule,
                                std::uint64_t seed,
                                const ReplicaLimits &limits = {});

/** Exploration knobs beyond the config's [mc] section. */
struct ExplorerOptions {
    /** Parallel oracle workers. */
    unsigned jobs = 1;
    /** Campaign journal path ("" = no persistence). */
    std::string journalPath;
    /** Skip schedules the journal already has. */
    bool resume = false;
    /** Where to write the shrunk reproducer ("" = don't write). */
    std::string reproPath;
    /** Config file name, embedded in the replay command hint. */
    std::string configPath = "<config.ini>";
    /** Progress/verdict stream (nullptr = silent). */
    std::ostream *log = nullptr;
};

/** What an exploration found. */
struct ExplorerReport {
    /** Schedules the strategy generated (post dedup/budget). */
    std::size_t schedules = 0;
    /** Oracle runs executed / skipped via journal resume. */
    std::size_t executed = 0;
    std::size_t skipped = 0;
    /** Failing schedules among all explored. */
    std::size_t failures = 0;
    /** A failure was found (fields below are then valid). */
    bool found = false;
    /** First failing schedule in grid order. */
    FaultSchedule failing;
    /** Its 1-minimal shrink. */
    FaultSchedule minimal;
    /** The minimal schedule's outcome (same signature as failing). */
    OracleOutcome outcome;
    /** Oracle runs the shrink spent. */
    std::size_t shrinkRuns = 0;
    /** Exact CLI to replay the minimal reproducer. */
    std::string replayCommand;
    /** Where the reproducer was written ("" if not requested). */
    std::string reproPath;
};

/**
 * Explore the fault-schedule space of @p cfg (its [mc] section picks
 * strategy, horizon, budgets) and shrink the first failure found.
 */
ExplorerReport exploreFaultSchedules(const Config &cfg,
                                     const ExplorerOptions &opts);

} // namespace holdcsim::mc

#endif // HOLDCSIM_MC_EXPLORER_HH
