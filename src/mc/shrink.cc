#include "shrink.hh"

#include <algorithm>

namespace holdcsim::mc {

namespace {

/** Episodes of @p s except the [begin, end) slice. */
FaultSchedule
without(const FaultSchedule &s, std::size_t begin, std::size_t end)
{
    FaultSchedule out;
    for (std::size_t i = 0; i < s.faults.size(); ++i) {
        if (i < begin || i >= end)
            out.faults.push_back(s.faults[i]);
    }
    return out;
}

/** The [begin, end) slice of @p s alone. */
FaultSchedule
slice(const FaultSchedule &s, std::size_t begin, std::size_t end)
{
    FaultSchedule out;
    out.faults.assign(s.faults.begin() +
                          static_cast<std::ptrdiff_t>(begin),
                      s.faults.begin() +
                          static_cast<std::ptrdiff_t>(end));
    return out;
}

} // namespace

ShrinkResult
shrinkSchedule(const FaultSchedule &failing,
               const std::function<bool(const FaultSchedule &)>
                   &still_fails)
{
    ShrinkResult result;
    FaultSchedule cur = failing;
    cur.canonicalize();
    std::size_t n = 2;
    while (cur.size() >= 2) {
        std::size_t len = cur.size();
        std::size_t chunk = (len + n - 1) / n;
        bool reduced = false;

        // Try each chunk alone (steep reduction first), then each
        // complement (drop one chunk).
        for (std::size_t pass = 0; pass < 2 && !reduced; ++pass) {
            for (std::size_t begin = 0; begin < len; begin += chunk) {
                std::size_t end = std::min(begin + chunk, len);
                FaultSchedule cand =
                    pass == 0 ? slice(cur, begin, end)
                              : without(cur, begin, end);
                if (cand.empty() || cand.size() == cur.size())
                    continue;
                ++result.oracleRuns;
                if (still_fails(cand)) {
                    cur = std::move(cand);
                    n = std::max<std::size_t>(2, n - 1);
                    reduced = true;
                    break;
                }
            }
        }

        if (!reduced) {
            if (chunk <= 1)
                break; // 1-minimal
            n = std::min(2 * n, cur.size());
        }
    }
    result.minimal = std::move(cur);
    return result;
}

} // namespace holdcsim::mc
