/**
 * @file
 * Fault-schedule generation strategies: the explorer's input lattice.
 *
 * Each strategy tier enumerates (or bias-samples) a family of
 * bounded-horizon fault schedules over the faultable components:
 *
 *   boundary   -- one episode per schedule, injected at the
 *                 "interesting" instants where the plant changes
 *                 regime (governor timeout edges, retry-backoff
 *                 edges, reconcile/migration boundaries, audit
 *                 ticks), where races live.
 *   pairwise   -- two episodes per schedule: every ordered component
 *                 pair at every boundary instant, swept through a
 *                 small set of inter-fault offsets from exactly
 *                 coincident through overlapping to disjoint. The
 *                 workhorse tier: most injection bugs are pair
 *                 coincidences.
 *   exhaustive -- every schedule of up to maxFaults episodes over
 *                 the (component x boundary-instant) grid. Complete
 *                 over the discretized space; meant for small
 *                 horizons and fleets.
 *   random     -- seeded biased sampling (uniform times mixed with
 *                 boundary instants, varied repair delays) for the
 *                 space beyond the grid.
 *
 * Every tier is deterministic: the same space yields the same
 * schedules in the same order. Duplicates are removed by canonical
 * hash and the list is truncated to the configured budget.
 */

#ifndef HOLDCSIM_MC_STRATEGY_HH
#define HOLDCSIM_MC_STRATEGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dc/dc_config.hh"
#include "fault_schedule.hh"

namespace holdcsim::mc {

/** The schedule space a strategy enumerates over. */
struct StrategySpace {
    /** Components schedules may strike. */
    std::vector<FaultTarget> targets;
    /** Injection instants stay within (0, horizon]. */
    Tick horizon = 2 * sec;
    /** Base repair delay applied to generated episodes. */
    Tick repair = 50 * msec;
    /** Episodes per schedule cap (exhaustive/random tiers). */
    unsigned maxFaults = 2;
    /** Bias instants; sorted, unique, within (0, horizon]. */
    std::vector<Tick> boundaryTimes;
    /** Max schedules returned (0 = whatever the tier yields). */
    std::uint64_t budget = 0;
    /** Seed for the random tier. */
    std::uint64_t seed = 1;
};

/**
 * The boundary instants of @p cfg's plant within (0, horizon]: the
 * delay-timer tau (suspend decision edge) and one tick after it, the
 * retry-backoff base (redispatch edge), the orchestrator reconcile
 * period (migration decisions and their stop-and-copy windows), the
 * audit period, and coarse horizon fractions so sparse configs still
 * get spread. Sorted and deduplicated.
 */
std::vector<Tick> boundaryTimes(const DataCenterConfig &cfg,
                                Tick horizon);

/**
 * The faultable components of @p cfg's plant, honoring the
 * fault.fault_* class switches (servers by default). Network classes
 * require the fabric to be materialized; the caller passes the real
 * counts since config alone does not know switch/link totals.
 */
std::vector<FaultTarget> faultTargets(const DataCenterConfig &cfg,
                                      std::size_t num_switches,
                                      std::size_t num_links);

/**
 * Generate @p strategy's schedule list over @p space. Fatals on an
 * unknown strategy name. Deterministic, deduplicated, canonicalized,
 * budget-truncated.
 */
std::vector<FaultSchedule>
generateSchedules(const std::string &strategy,
                  const StrategySpace &space);

} // namespace holdcsim::mc

#endif // HOLDCSIM_MC_STRATEGY_HH
