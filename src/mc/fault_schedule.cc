#include "fault_schedule.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <tuple>

#include "sim/logging.hh"

namespace holdcsim::mc {

void
FaultSchedule::canonicalize()
{
    std::sort(faults.begin(), faults.end(),
              [](const ScheduledFault &a, const ScheduledFault &b) {
                  if (a.record.downAt != b.record.downAt)
                      return a.record.downAt < b.record.downAt;
                  if (a.target < b.target || b.target < a.target)
                      return a.target < b.target;
                  return a.record.upAt < b.record.upAt;
              });
}

std::string
FaultSchedule::canonicalText() const
{
    FaultSchedule sorted = *this;
    sorted.canonicalize();
    std::string text;
    for (const ScheduledFault &f : sorted.faults) {
        text += formatFaultTraceLine(f);
        text += '\n';
    }
    return text;
}

std::uint64_t
FaultSchedule::hash() const
{
    std::string text = canonicalText();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

FaultSchedule
FaultSchedule::fromTraceText(const std::string &text,
                             const std::string &where)
{
    FaultSchedule out;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        ScheduledFault fault;
        if (parseFaultTraceLine(
                line, where + ":" + std::to_string(lineno), fault))
            out.faults.push_back(fault);
    }
    return out;
}

FaultSchedule
FaultSchedule::fromTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fault schedule '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return fromTraceText(text.str(), path);
}

void
writeReproFile(std::ostream &os, const FaultSchedule &schedule,
               const std::vector<std::string> &header_lines)
{
    for (const std::string &line : header_lines)
        os << "# " << line << '\n';
    os << schedule.canonicalText();
}

} // namespace holdcsim::mc
