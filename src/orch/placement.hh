/**
 * @file
 * Pluggable container placement policies.
 *
 * The orchestrator pre-filters the fleet to servers that fit the
 * container (healthy, enough free cores under the overcommit cap,
 * enough free local memory, anti-affinity honored) and the policy
 * picks one. All policies are deterministic: ties break toward the
 * lowest server index.
 */

#ifndef HOLDCSIM_ORCH_PLACEMENT_HH
#define HOLDCSIM_ORCH_PLACEMENT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "container.hh"

namespace holdcsim {

/** A candidate server as the placement policy sees it. */
struct ServerView {
    std::size_t index = 0;
    /** Cores still unreserved (under the overcommit cap). */
    double coresFree = 0.0;
    /** Local memory still unreserved. */
    Bytes memFree = 0;
    /** Containers of the same deployment already hosted here. */
    unsigned sameDeployment = 0;
    /** All containers hosted here. */
    unsigned containers = 0;
};

/** Picks a server for a container from pre-filtered candidates. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;
    virtual const char *name() const = 0;
    /**
     * Choose from @p candidates (each already fits @p spec; sorted
     * by ascending server index). nullopt = refuse placement.
     */
    virtual std::optional<std::size_t>
    place(const ContainerSpec &spec,
          const std::vector<ServerView> &candidates) = 0;
};

/** Most-allocated first: fills servers before opening new ones
 *  (consolidates for power management; maximizes co-location). */
class BinPackPlacement : public PlacementPolicy
{
  public:
    const char *name() const override { return "bin_pack"; }
    std::optional<std::size_t>
    place(const ContainerSpec &spec,
          const std::vector<ServerView> &candidates) override;
};

/** Least-allocated first: spreads replicas across the fleet
 *  (minimizes co-location interference and crash blast radius). */
class SpreadPlacement : public PlacementPolicy
{
  public:
    const char *name() const override { return "spread"; }
    std::optional<std::size_t>
    place(const ContainerSpec &spec,
          const std::vector<ServerView> &candidates) override;
};

/** Prefers servers already hosting the same deployment (chatty
 *  replica sets); falls back to bin-packing among fresh servers. */
class AffinityPlacement : public PlacementPolicy
{
  public:
    const char *name() const override { return "affinity"; }
    std::optional<std::size_t>
    place(const ContainerSpec &spec,
          const std::vector<ServerView> &candidates) override;
};

/** Factory for "bin_pack" | "spread" | "affinity"; fatals on
 *  anything else. */
std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const std::string &name);

} // namespace holdcsim

#endif // HOLDCSIM_ORCH_PLACEMENT_HH
