#include "placement.hh"

#include "sim/logging.hh"

namespace holdcsim {

const char *
toString(ContainerState s)
{
    switch (s) {
      case ContainerState::pending:
        return "pending";
      case ContainerState::running:
        return "running";
      case ContainerState::migrating:
        return "migrating";
      case ContainerState::downtime:
        return "downtime";
      case ContainerState::draining:
        return "draining";
      case ContainerState::stopped:
        return "stopped";
    }
    HOLDCSIM_PANIC("unknown ContainerState");
}

std::optional<std::size_t>
BinPackPlacement::place(const ContainerSpec &,
                        const std::vector<ServerView> &candidates)
{
    const ServerView *best = nullptr;
    for (const ServerView &v : candidates) {
        if (!best || v.coresFree < best->coresFree)
            best = &v;
    }
    if (!best)
        return std::nullopt;
    return best->index;
}

std::optional<std::size_t>
SpreadPlacement::place(const ContainerSpec &,
                       const std::vector<ServerView> &candidates)
{
    const ServerView *best = nullptr;
    for (const ServerView &v : candidates) {
        // Fewest co-hosted containers first; most free cores second.
        if (!best || v.containers < best->containers ||
            (v.containers == best->containers &&
             v.coresFree > best->coresFree)) {
            best = &v;
        }
    }
    if (!best)
        return std::nullopt;
    return best->index;
}

std::optional<std::size_t>
AffinityPlacement::place(const ContainerSpec &,
                         const std::vector<ServerView> &candidates)
{
    const ServerView *best = nullptr;
    for (const ServerView &v : candidates) {
        // Most same-deployment neighbors first, then bin-pack.
        if (!best || v.sameDeployment > best->sameDeployment ||
            (v.sameDeployment == best->sameDeployment &&
             v.coresFree < best->coresFree)) {
            best = &v;
        }
    }
    if (!best)
        return std::nullopt;
    return best->index;
}

std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const std::string &name)
{
    if (name == "bin_pack")
        return std::make_unique<BinPackPlacement>();
    if (name == "spread")
        return std::make_unique<SpreadPlacement>();
    if (name == "affinity")
        return std::make_unique<AffinityPlacement>();
    fatal("unknown placement policy '", name,
          "' (bin_pack|spread|affinity)");
}

} // namespace holdcsim
