/**
 * @file
 * The container orchestration layer (control plane).
 *
 * Sits between the workload and the global scheduler: jobs tagged
 * with an orchestration group have their tasks routed to a container
 * replica of the matching deployment instead of the bare-server
 * dispatch policy. The orchestrator owns
 *
 *  - placement: pending containers are bound to servers by a
 *    pluggable PlacementPolicy under core/memory accounting with an
 *    optional overcommit cap;
 *  - a periodic reconciler: places stragglers, advances rolling
 *    updates (surge one fresh replica, retire one stale replica per
 *    pass), runs the threshold autoscaler, and optionally migrates
 *    containers off overcommitted servers;
 *  - live migration: iterative dirty-page pre-copy rounds are real
 *    flows through the modeled fabric (round r re-dirties
 *    memBytes * dirtyFrac^r, so migrated bytes are a deterministic
 *    function of the model -- identical across network tiers --
 *    while durations follow topology, link health and tier), ending
 *    in a stop-and-copy downtime window during which new tasks for
 *    the container are deferred;
 *  - degradation models: co-located containers on an overcommitted
 *    server take an interference slowdown, and containers whose
 *    remote-memory home is across the fabric take a latency
 *    multiplier proportional to the path latency (DRackSim-style);
 *  - crash response: a server going down reschedules its containers
 *    (and aborts migrations touching it) so retried tasks land on
 *    the replacement replica.
 *
 * Everything is deterministic: decisions depend only on simulated
 * state, never on host randomness or wall-clock.
 */

#ifndef HOLDCSIM_ORCH_ORCHESTRATOR_HH
#define HOLDCSIM_ORCH_ORCHESTRATOR_HH

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container.hh"
#include "placement.hh"
#include "sched/global_scheduler.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

class Network;
class StatGroup;

/** Orchestrator-wide knobs (the `[orch]` config section). */
struct OrchConfig {
    /** Placement policy: bin_pack | spread | affinity. */
    std::string placement = "bin_pack";
    /** Reconciler period. */
    Tick reconcilePeriod = 1 * sec;
    /** Core overcommit cap: placement may reserve up to
     *  numCores * overcommit cores per server. */
    double overcommit = 1.0;
    /** Local memory capacity per server. */
    Bytes serverMemBytes = static_cast<Bytes>(64) << 30;
    /**
     * Interference slowdown per unit of core overcommit: tasks on a
     * server with reserved cores C > physical cores P are inflated
     * by 1 + interference * (C - P) / P. 0 disables.
     */
    double interference = 0.0;
    /**
     * Remote-memory penalty per microsecond of one-way fabric path
     * latency between the compute host and the memory home,
     * weighted by the container's remote fraction. 0 disables.
     */
    double remoteMemPenaltyPerUs = 0.0;
    /** Threshold autoscaler master switch. */
    bool autoscale = false;
    /** Scale up when activeTasks / (replicas * cores) exceeds. */
    double autoscaleHigh = 0.75;
    /** Scale down when it falls below. */
    double autoscaleLow = 0.25;
    /** Migrate containers off physically overcommitted servers. */
    bool rebalance = false;
    /** @name Dirty-page migration model */
    ///@{
    /** Fraction of copied memory re-dirtied per pre-copy round. */
    double migrationDirtyFrac = 0.25;
    /** Stop-and-copy once the dirty set shrinks to this. */
    Bytes migrationStopCopyBytes = static_cast<Bytes>(4) << 20;
    /** Hard cap on total copy rounds (incl. the downtime round). */
    unsigned migrationMaxRounds = 8;
    ///@}
};

/** The orchestration control plane. */
class Orchestrator
{
  public:
    /**
     * @param sim   engine
     * @param sched scheduler to install routing hooks into
     * @param net   fabric for migration flows and remote-memory
     *              latency; null disables migration (containers
     *              still place, interfere, and reschedule)
     * @param cfg   knobs
     *
     * Installs the task router into @p sched and arms the periodic
     * reconciler (a background event: it never keeps an otherwise
     * finished simulation alive).
     */
    Orchestrator(Simulator &sim, GlobalScheduler &sched, Network *net,
                 OrchConfig cfg = {});
    ~Orchestrator();
    Orchestrator(const Orchestrator &) = delete;
    Orchestrator &operator=(const Orchestrator &) = delete;

    /** @name Deployments */
    ///@{
    /** Create a deployment; its replicas place immediately (or stay
     *  pending until capacity appears). */
    DeploymentId createDeployment(DeploymentSpec spec);
    /** Move the desired replica count (clamped to min/max). */
    void setReplicas(DeploymentId d, unsigned replicas);
    /**
     * Begin replacing every replica of @p d whose version is below
     * @p new_version: one surge replica is started per reconcile
     * pass and one stale replica drained once fresh capacity runs.
     */
    void beginRollingUpdate(DeploymentId d, int new_version);
    /** Whether any replica of @p d is stale or in flight. */
    bool updateInProgress(DeploymentId d) const;
    ///@}

    /** @name Live migration */
    ///@{
    /**
     * Start migrating container @p c to @p dst. False (and no state
     * change) when there is no fabric, the container is not
     * running, @p dst is the current host, down, or lacks capacity.
     */
    bool migrate(ContainerId c, std::size_t dst);
    /**
     * Live-migrate every container off @p server (maintenance
     * drain). Containers with no feasible destination stay. Returns
     * the number of migrations started.
     */
    std::size_t drainServer(std::size_t server);
    ///@}

    /** @name Fault wiring (FaultManager server hook) */
    ///@{
    void onServerDown(std::size_t idx);
    void onServerUp(std::size_t idx);
    ///@}

    /** Run one reconcile pass now (also runs periodically). */
    void reconcile();

    /** @name Introspection */
    ///@{
    std::size_t numContainers() const { return _containers.size(); }
    const Container &container(ContainerId c) const;
    /** Containers currently hosted on @p server. */
    std::vector<ContainerId> containersOn(std::size_t server) const;
    /** Running (routable) replicas of @p d. */
    unsigned runningReplicas(DeploymentId d) const;
    const DeploymentSpec &deploymentSpec(DeploymentId d) const;
    /** Current interference factor tasks placed on @p server get. */
    double interferenceScale(std::size_t server) const;
    /** Current remote-memory factor for @p c's placement. */
    double remoteMemScale(const Container &c) const;
    ///@}

    /** @name Statistics (orch.* stat group) */
    ///@{
    struct Stats {
        /** Containers bound to a server (initial + surge + crash
         *  re-placements). */
        std::uint64_t placements = 0;
        /** Placements forced by a host crash. */
        std::uint64_t reschedules = 0;
        std::uint64_t migrationsStarted = 0;
        std::uint64_t migrationsCompleted = 0;
        std::uint64_t migrationsAborted = 0;
        /** Bytes landed by completed migration rounds. */
        Bytes migratedBytes = 0;
        /** Total stop-and-copy wall time. */
        Tick totalDowntime = 0;
        /** Extra nominal service seconds from interference. */
        double interferenceInflatedSec = 0.0;
        /** Extra nominal service seconds from remote memory. */
        double remoteMemInflatedSec = 0.0;
        std::uint64_t tasksRouted = 0;
        std::uint64_t tasksDeferred = 0;
        std::uint64_t autoscaleUps = 0;
        std::uint64_t autoscaleDowns = 0;
    };
    const Stats &stats() const { return _stats; }
    /** Containers currently routable. */
    std::size_t containersRunning() const;
    void addStats(StatGroup &g) const;
    /** Zero counters (end of warmup); placements stand. */
    void resetStats() { _stats = Stats{}; }
    ///@}

  private:
    struct Deployment {
        DeploymentSpec spec;
        /** Rolling-update target; == spec.version when idle. */
        int targetVersion;
        /** Replica ids, live and stopped (stopped stay for audit). */
        std::vector<ContainerId> replicas;
        /** Tasks parked until a replica becomes routable. */
        std::deque<std::pair<JobId, TaskId>> deferred;
    };

    /** Per-server reservation books. */
    struct ServerAlloc {
        double cores = 0.0;
        Bytes mem = 0;
        unsigned containers = 0;
        bool down = false;
    };

    GlobalScheduler::TaskRoute routeTask(const TaskRef &ref);
    void taskClosed(JobId job, TaskId task, bool done);

    Container &mut(ContainerId c) { return _containers.at(c); }
    Deployment &dep(DeploymentId d) { return _deployments.at(d); }

    /** Start one new replica (pending; placed immediately if
     *  possible). */
    ContainerId startContainer(DeploymentId d, int version);
    /** Bind a pending container to a server. False = no fit. */
    bool placeContainer(Container &c);
    /** Stop accepting tasks; stop fully when the last one ends. */
    void drainContainer(Container &c);
    void stopContainer(Container &c);
    /** Release the reservation @p c holds on @p server. */
    void release(std::size_t server, const ContainerSpec &spec);
    void reserve(std::size_t server, const ContainerSpec &spec);
    bool fits(std::size_t server, const ContainerSpec &spec) const;
    /** Local (non-disaggregated) memory charge of @p spec. */
    static Bytes localMem(const ContainerSpec &spec);

    void startMigrationRound(Container &c);
    void onMigrationRoundDone(ContainerId c);
    void onMigrationAborted(ContainerId c);
    void completeMigration(Container &c);

    /** Re-route every task parked on @p d. */
    void releaseDeferred(Deployment &d);
    void reconcileDeployment(DeploymentId id);
    void autoscaleDeployment(DeploymentId id);
    void rebalanceOnce();

    /** One-way fabric path latency between two servers. */
    Tick pathLatency(std::size_t a, std::size_t b) const;

    /** Tracer when the orch category is enabled, else null. */
    TraceManager *tracer();
    void traceContainer(Container &c, const std::string &state);
    void traceEvent(const std::string &name);

    Simulator &_sim;
    GlobalScheduler &_sched;
    Network *_net;
    OrchConfig _cfg;
    std::unique_ptr<PlacementPolicy> _policy;

    std::vector<Container> _containers;
    std::vector<Deployment> _deployments;
    /** group -> deployment serving it. */
    std::map<int, DeploymentId> _groups;
    std::vector<ServerAlloc> _alloc;
    /** Routed task attempt -> serving container. */
    std::map<std::pair<JobId, TaskId>, ContainerId> _routed;

    EventFunctionWrapper _reconcileEvent;
    Stats _stats;

    TraceTrackId _eventTrack = noTraceTrack;
    std::vector<TraceTrackId> _containerTracks;
};

} // namespace holdcsim

#endif // HOLDCSIM_ORCH_ORCHESTRATOR_HH
