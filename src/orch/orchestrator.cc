#include "orchestrator.hh"

#include <algorithm>
#include <cmath>

#include "network/network.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace holdcsim {

Orchestrator::Orchestrator(Simulator &sim, GlobalScheduler &sched,
                           Network *net, OrchConfig cfg)
    : _sim(sim), _sched(sched), _net(net), _cfg(std::move(cfg)),
      _policy(makePlacementPolicy(_cfg.placement)),
      _alloc(sched.servers().size()),
      _reconcileEvent([this] { reconcile(); }, "orch.reconcile")
{
    if (_cfg.reconcilePeriod == 0)
        fatal("orch reconcile period must be positive");
    if (_cfg.overcommit < 1.0)
        fatal("orch overcommit must be >= 1");
    if (_cfg.migrationDirtyFrac < 0.0 || _cfg.migrationDirtyFrac >= 1.0)
        fatal("orch migration dirty fraction must be in [0, 1)");
    if (_cfg.migrationMaxRounds == 0)
        fatal("orch migration needs at least one copy round");
    if (_net && _net->topology().numServers() < _alloc.size())
        fatal("network topology has fewer servers than the fleet");

    _sched.setTaskRouter(
        [this](const TaskRef &ref) { return routeTask(ref); },
        [this](JobId job, TaskId task, bool done) {
            taskClosed(job, task, done);
        });

    // Background: a reconciler alone never keeps the sim alive.
    _reconcileEvent.setBackground(true);
    _sim.schedule(_reconcileEvent, _sim.curTick() + _cfg.reconcilePeriod);
}

Orchestrator::~Orchestrator()
{
    // The scheduler outlives us (construction order); disarm the
    // hooks so no callback reaches a dead orchestrator.
    _sched.setTaskRouter(nullptr, nullptr);
    if (_reconcileEvent.scheduled())
        _sim.deschedule(_reconcileEvent);
}

// ---------------------------------------------------------------------
// Deployments

DeploymentId
Orchestrator::createDeployment(DeploymentSpec spec)
{
    if (spec.container.cores <= 0.0)
        fatal("container needs a positive core request");
    if (spec.container.remoteMemFrac < 0.0 ||
        spec.container.remoteMemFrac > 1.0) {
        fatal("container remote-memory fraction must be in [0, 1]");
    }
    if (spec.minReplicas == 0 || spec.minReplicas > spec.maxReplicas)
        fatal("deployment needs 1 <= min_replicas <= max_replicas");
    spec.replicas = std::clamp(spec.replicas, spec.minReplicas,
                               spec.maxReplicas);
    auto id = static_cast<DeploymentId>(_deployments.size());
    if (!_groups.emplace(spec.group, id).second)
        fatal("orchestration group ", spec.group,
              " already has a deployment");
    int version = spec.version;
    unsigned replicas = spec.replicas;
    _deployments.push_back(Deployment{std::move(spec), version, {}, {}});
    for (unsigned i = 0; i < replicas; ++i)
        startContainer(id, version);
    return id;
}

void
Orchestrator::setReplicas(DeploymentId d, unsigned replicas)
{
    Deployment &dp = dep(d);
    dp.spec.replicas = std::clamp(replicas, dp.spec.minReplicas,
                                  dp.spec.maxReplicas);
    reconcileDeployment(d);
}

void
Orchestrator::beginRollingUpdate(DeploymentId d, int new_version)
{
    Deployment &dp = dep(d);
    if (new_version <= dp.targetVersion)
        return;
    dp.targetVersion = new_version;
    traceEvent("deploy" + std::to_string(d) + ".update.v" +
               std::to_string(new_version));
    reconcileDeployment(d);
}

bool
Orchestrator::updateInProgress(DeploymentId d) const
{
    const Deployment &dp = _deployments.at(d);
    for (ContainerId cid : dp.replicas) {
        const Container &c = _containers.at(cid);
        if (c.state != ContainerState::stopped &&
            c.version < dp.targetVersion) {
            return true;
        }
    }
    return false;
}

ContainerId
Orchestrator::startContainer(DeploymentId d, int version)
{
    auto id = static_cast<ContainerId>(_containers.size());
    Container c;
    c.id = id;
    c.deployment = d;
    c.spec = dep(d).spec.container;
    c.version = version;
    _containers.push_back(c);
    dep(d).replicas.push_back(id);
    placeContainer(_containers.back());
    return id;
}

// ---------------------------------------------------------------------
// Placement and reservation books

Bytes
Orchestrator::localMem(const ContainerSpec &spec)
{
    double local = static_cast<double>(spec.memBytes) *
                   (1.0 - spec.remoteMemFrac);
    return static_cast<Bytes>(std::llround(local));
}

bool
Orchestrator::fits(std::size_t server, const ContainerSpec &spec) const
{
    const ServerAlloc &a = _alloc.at(server);
    if (a.down)
        return false;
    double cap = _sched.servers()[server]->numCores() * _cfg.overcommit;
    if (a.cores + spec.cores > cap + 1e-9)
        return false;
    return a.mem + localMem(spec) <= _cfg.serverMemBytes;
}

void
Orchestrator::reserve(std::size_t server, const ContainerSpec &spec)
{
    ServerAlloc &a = _alloc.at(server);
    a.cores += spec.cores;
    a.mem += localMem(spec);
    ++a.containers;
}

void
Orchestrator::release(std::size_t server, const ContainerSpec &spec)
{
    ServerAlloc &a = _alloc.at(server);
    a.cores -= spec.cores;
    if (a.cores < 1e-9)
        a.cores = 0.0;
    Bytes m = localMem(spec);
    a.mem = a.mem >= m ? a.mem - m : 0;
    if (a.containers > 0)
        --a.containers;
}

bool
Orchestrator::placeContainer(Container &c)
{
    if (c.state != ContainerState::pending)
        HOLDCSIM_PANIC("placing container ", c.id, " in state ",
                       toString(c.state));
    const Deployment &dp = _deployments.at(c.deployment);

    std::vector<ServerView> views;
    views.reserve(_alloc.size());
    for (std::size_t s = 0; s < _alloc.size(); ++s) {
        if (!fits(s, c.spec))
            continue;
        ServerView v;
        v.index = s;
        double cap =
            _sched.servers()[s]->numCores() * _cfg.overcommit;
        v.coresFree = cap - _alloc[s].cores;
        v.memFree = _cfg.serverMemBytes - _alloc[s].mem;
        v.containers = _alloc[s].containers;
        for (ContainerId sib : dp.replicas) {
            const Container &o = _containers[sib];
            if (o.id != c.id && o.server == s &&
                o.state != ContainerState::stopped) {
                ++v.sameDeployment;
            }
        }
        views.push_back(v);
    }
    if (dp.spec.antiAffinity) {
        // Best effort: keep replicas apart, but a constrained fleet
        // (e.g. after crashes) beats staying pending.
        std::vector<ServerView> apart;
        for (const ServerView &v : views) {
            if (v.sameDeployment == 0)
                apart.push_back(v);
        }
        if (!apart.empty())
            views.swap(apart);
    }
    std::optional<std::size_t> pick = _policy->place(c.spec, views);
    if (!pick)
        return false;

    reserve(*pick, c.spec);
    c.server = *pick;
    if (c.memHome == noServer)
        c.memHome = *pick;
    c.state = ContainerState::running;
    ++_stats.placements;
    traceEvent("c" + std::to_string(c.id) + ".place.sv" +
               std::to_string(*pick));
    traceContainer(c, "sv" + std::to_string(*pick));
    releaseDeferred(_deployments.at(c.deployment));
    return true;
}

void
Orchestrator::drainContainer(Container &c)
{
    if (c.state == ContainerState::stopped || c.draining)
        return;
    if (c.state == ContainerState::pending) {
        stopContainer(c);
        return;
    }
    c.draining = true;
    if (c.state == ContainerState::running)
        c.state = ContainerState::draining;
    if (c.activeTasks == 0 && c.state == ContainerState::draining)
        stopContainer(c);
}

void
Orchestrator::stopContainer(Container &c)
{
    if (c.state == ContainerState::stopped)
        return;
    if (c.server != noServer)
        release(c.server, c.spec);
    c.server = noServer;
    c.state = ContainerState::stopped;
    c.draining = false;
    traceEvent("c" + std::to_string(c.id) + ".stop");
    traceContainer(c, "stopped");
}

// ---------------------------------------------------------------------
// Task routing (GlobalScheduler hooks)

GlobalScheduler::TaskRoute
Orchestrator::routeTask(const TaskRef &ref)
{
    GlobalScheduler::TaskRoute route;
    if (ref.orchGroup < 0)
        return route; // untagged: normal dispatch
    auto git = _groups.find(ref.orchGroup);
    if (git == _groups.end())
        return route; // no deployment serves this group
    Deployment &dp = _deployments[git->second];

    // Least-loaded routable replica; ties to the lowest id.
    Container *best = nullptr;
    for (ContainerId cid : dp.replicas) {
        Container &c = _containers[cid];
        if (!c.routable())
            continue;
        if (!best || c.activeTasks < best->activeTasks)
            best = &c;
    }
    if (!best) {
        // Every replica is pending, stopped or paused mid-migration:
        // stall until one comes (back) up.
        dp.deferred.emplace_back(ref.job, ref.task);
        ++_stats.tasksDeferred;
        route.action = GlobalScheduler::TaskRoute::Action::defer;
        return route;
    }

    double iscale = interferenceScale(best->server);
    double rscale = remoteMemScale(*best);
    double nominal = toSeconds(ref.serviceTime);
    _stats.interferenceInflatedSec += (iscale - 1.0) * nominal;
    _stats.remoteMemInflatedSec += (rscale - 1.0) * nominal;
    ++_stats.tasksRouted;
    ++best->activeTasks;
    _routed[{ref.job, ref.task}] = best->id;

    route.action = GlobalScheduler::TaskRoute::Action::pin;
    route.server = best->server;
    route.serviceScale = iscale * rscale;
    return route;
}

void
Orchestrator::taskClosed(JobId job, TaskId task, bool)
{
    auto it = _routed.find({job, task});
    if (it == _routed.end())
        return; // never routed (untagged job or deferred task)
    Container &c = _containers[it->second];
    _routed.erase(it);
    if (c.activeTasks > 0)
        --c.activeTasks;
    if (c.draining && c.activeTasks == 0 &&
        c.state == ContainerState::draining) {
        stopContainer(c);
    }
}

void
Orchestrator::releaseDeferred(Deployment &d)
{
    if (d.deferred.empty())
        return;
    // Swap the queue out first: tasks that still find no replica
    // re-defer into the fresh queue instead of looping forever.
    std::deque<std::pair<JobId, TaskId>> parked;
    parked.swap(d.deferred);
    for (const auto &[job, task] : parked)
        _sched.resumeTask(job, task);
}

// ---------------------------------------------------------------------
// Degradation models

double
Orchestrator::interferenceScale(std::size_t server) const
{
    if (_cfg.interference <= 0.0 || server == noServer)
        return 1.0;
    double demand = _alloc.at(server).cores;
    double phys = _sched.servers()[server]->numCores();
    if (demand <= phys)
        return 1.0;
    return 1.0 + _cfg.interference * (demand - phys) / phys;
}

double
Orchestrator::remoteMemScale(const Container &c) const
{
    if (_cfg.remoteMemPenaltyPerUs <= 0.0 ||
        c.spec.remoteMemFrac <= 0.0 || !_net ||
        c.server == noServer || c.memHome == noServer ||
        c.memHome == c.server) {
        return 1.0;
    }
    double us = toSeconds(pathLatency(c.server, c.memHome)) * 1e6;
    return 1.0 +
           c.spec.remoteMemFrac * _cfg.remoteMemPenaltyPerUs * us;
}

Tick
Orchestrator::pathLatency(std::size_t a, std::size_t b) const
{
    if (!_net || a == b)
        return 0;
    const Topology &topo = _net->topology();
    NodeId na = topo.serverNode(a);
    NodeId nb = topo.serverNode(b);
    if (!_net->routing().reachable(na, nb))
        return 0; // partitioned: no path to charge for
    Route r = _net->routing().route(na, nb, a * 31 + b);
    Tick total = 0;
    for (LinkId l : r.links)
        total += topo.link(l).latency;
    return total;
}

// ---------------------------------------------------------------------
// Live migration

bool
Orchestrator::migrate(ContainerId id, std::size_t dst)
{
    Container &c = mut(id);
    if (!_net || c.state != ContainerState::running || c.draining)
        return false;
    if (dst >= _alloc.size() || dst == c.server)
        return false;
    if (!fits(dst, c.spec))
        return false;

    reserve(dst, c.spec);
    c.mig = Container::Migration{};
    c.mig.dst = dst;
    ++_stats.migrationsStarted;
    traceEvent("c" + std::to_string(c.id) + ".migrate.sv" +
               std::to_string(c.server) + "-sv" + std::to_string(dst));
    startMigrationRound(c);
    return true;
}

std::size_t
Orchestrator::drainServer(std::size_t server)
{
    std::size_t started = 0;
    // Snapshot: migrate() mutates the books we select against.
    std::vector<ContainerId> on = containersOn(server);
    for (ContainerId cid : on) {
        Container &c = mut(cid);
        if (c.state != ContainerState::running || c.draining)
            continue;
        // Deterministic target: best placement fit elsewhere.
        std::size_t bestDst = noServer;
        double bestFree = -1.0;
        for (std::size_t s = 0; s < _alloc.size(); ++s) {
            if (s == server || !fits(s, c.spec))
                continue;
            double cap = _sched.servers()[s]->numCores() *
                         _cfg.overcommit;
            double free = cap - _alloc[s].cores;
            if (free > bestFree) {
                bestFree = free;
                bestDst = s;
            }
        }
        if (bestDst != noServer && migrate(cid, bestDst))
            ++started;
    }
    return started;
}

/** Dirty bytes left for copy round @p round (0 = full memory). */
static Bytes
dirtyBytesFor(const ContainerSpec &spec, double frac, unsigned round)
{
    double left = static_cast<double>(spec.memBytes) *
                  std::pow(frac, static_cast<double>(round));
    return static_cast<Bytes>(std::llround(left));
}

void
Orchestrator::startMigrationRound(Container &c)
{
    Bytes bytes = dirtyBytesFor(c.spec, _cfg.migrationDirtyFrac,
                                c.mig.round);
    // The round small enough to finish under a pause -- or the last
    // permitted one -- is the stop-and-copy: pause the container
    // (new tasks defer) and ship the final dirty set.
    bool final = bytes <= _cfg.migrationStopCopyBytes ||
                 c.mig.round + 1 >= _cfg.migrationMaxRounds;
    if (final && !c.mig.inDowntime) {
        c.mig.inDowntime = true;
        c.mig.downtimeStart = _sim.curTick();
        c.state = ContainerState::downtime;
        traceEvent("c" + std::to_string(c.id) + ".downtime");
        traceContainer(c, "downtime");
    } else if (!final) {
        c.state = ContainerState::migrating;
        traceContainer(c, "migrating-sv" + std::to_string(c.mig.dst));
    }
    c.mig.roundBytes = std::max<Bytes>(bytes, 1);
    ContainerId id = c.id;
    c.mig.flow = _net->startFlow(
        c.server, c.mig.dst, c.mig.roundBytes,
        [this, id] { onMigrationRoundDone(id); },
        [this, id] { onMigrationAborted(id); });
}

void
Orchestrator::onMigrationRoundDone(ContainerId id)
{
    Container &c = mut(id);
    c.mig.bytesDone += c.mig.roundBytes;
    _stats.migratedBytes += c.mig.roundBytes;
    if (c.mig.inDowntime) {
        completeMigration(c);
        return;
    }
    ++c.mig.round;
    startMigrationRound(c);
}

void
Orchestrator::completeMigration(Container &c)
{
    _stats.totalDowntime += _sim.curTick() - c.mig.downtimeStart;
    ++_stats.migrationsCompleted;
    release(c.server, c.spec);
    c.server = c.mig.dst;
    c.mig = Container::Migration{};
    c.state = ContainerState::running;
    traceContainer(c, "sv" + std::to_string(c.server));
    releaseDeferred(_deployments.at(c.deployment));
}

void
Orchestrator::onMigrationAborted(ContainerId id)
{
    Container &c = mut(id);
    if (c.state != ContainerState::migrating &&
        c.state != ContainerState::downtime) {
        return; // stale abort of an already-resolved migration
    }
    ++_stats.migrationsAborted;
    if (c.mig.inDowntime)
        _stats.totalDowntime += _sim.curTick() - c.mig.downtimeStart;
    release(c.mig.dst, c.spec);
    c.mig = Container::Migration{};
    if (c.server != noServer && !_alloc[c.server].down) {
        // Source survived: the container just keeps running there.
        c.state = ContainerState::running;
        traceContainer(c, "sv" + std::to_string(c.server));
        releaseDeferred(_deployments.at(c.deployment));
    } else {
        // Source died mid-copy: full reschedule.
        if (c.server != noServer)
            release(c.server, c.spec);
        c.server = noServer;
        c.state = ContainerState::pending;
        ++_stats.reschedules;
        traceContainer(c, "pending");
        placeContainer(c);
    }
}

// ---------------------------------------------------------------------
// Fault response

void
Orchestrator::onServerDown(std::size_t idx)
{
    if (idx >= _alloc.size())
        return;
    _alloc[idx].down = true;
    // Snapshot: the handlers below rewrite container state.
    std::vector<ContainerId> affected;
    for (const Container &c : _containers) {
        bool touches = c.server == idx ||
                       ((c.state == ContainerState::migrating ||
                         c.state == ContainerState::downtime) &&
                        c.mig.dst == idx);
        if (touches && c.state != ContainerState::stopped)
            affected.push_back(c.id);
    }
    for (ContainerId cid : affected) {
        Container &c = mut(cid);
        switch (c.state) {
          case ContainerState::migrating:
          case ContainerState::downtime:
            // Abort the copy stream; the abort handler reschedules
            // or falls back to the source as appropriate.
            if (c.mig.flow != Network::invalidFlow &&
                !_net->flows().abortFlow(c.mig.flow)) {
                // Flow already gone (e.g. fabric partition pending
                // abort): resolve the migration here.
                onMigrationAborted(cid);
            }
            break;
          case ContainerState::draining:
            // Its tasks died with the host; nothing left to wait on.
            stopContainer(c);
            break;
          case ContainerState::running: {
            release(c.server, c.spec);
            c.server = noServer;
            c.state = ContainerState::pending;
            ++_stats.reschedules;
            traceEvent("c" + std::to_string(c.id) + ".reschedule");
            traceContainer(c, "pending");
            // Replace immediately so retried tasks find the new
            // replica; a full fleet waits for the reconciler.
            placeContainer(c);
            break;
          }
          default:
            break;
        }
    }
}

void
Orchestrator::onServerUp(std::size_t idx)
{
    if (idx >= _alloc.size())
        return;
    _alloc[idx].down = false;
    // Recovered capacity: settle any pending replicas right away.
    for (Container &c : _containers) {
        if (c.state == ContainerState::pending)
            placeContainer(c);
    }
}

// ---------------------------------------------------------------------
// Reconciler

void
Orchestrator::reconcile()
{
    for (DeploymentId d = 0; d < _deployments.size(); ++d) {
        if (_cfg.autoscale)
            autoscaleDeployment(d);
        reconcileDeployment(d);
    }
    if (_cfg.rebalance)
        rebalanceOnce();
    _sim.schedule(_reconcileEvent,
                  _sim.curTick() + _cfg.reconcilePeriod);
}

void
Orchestrator::reconcileDeployment(DeploymentId id)
{
    Deployment &d = _deployments[id];
    // Place stragglers first: capacity may have appeared.
    for (ContainerId cid : d.replicas) {
        Container &c = _containers[cid];
        if (c.state == ContainerState::pending)
            placeContainer(c);
    }

    unsigned fresh = 0, stale = 0, freshRunning = 0;
    for (ContainerId cid : d.replicas) {
        const Container &c = _containers[cid];
        if (c.state == ContainerState::stopped || c.draining)
            continue;
        if (c.version >= d.targetVersion) {
            ++fresh;
            if (c.routable())
                ++freshRunning;
        } else {
            ++stale;
        }
    }

    if (stale == 0) {
        // Steady state: enforce the desired replica count.
        while (fresh < d.spec.replicas) {
            startContainer(id, d.targetVersion);
            ++fresh;
        }
        while (fresh > d.spec.replicas) {
            // Retire the least-loaded fresh replica.
            Container *victim = nullptr;
            for (ContainerId cid : d.replicas) {
                Container &c = _containers[cid];
                if (c.state == ContainerState::stopped || c.draining ||
                    !c.routable()) {
                    continue;
                }
                if (!victim || c.activeTasks < victim->activeTasks)
                    victim = &c;
            }
            if (!victim)
                break;
            drainContainer(*victim);
            --fresh;
        }
        if (d.spec.version != d.targetVersion)
            d.spec.version = d.targetVersion;
        return;
    }

    // Rolling update: surge one fresh replica per pass, and retire
    // one stale replica for each fresh one that is up and serving.
    if (fresh < d.spec.replicas)
        startContainer(id, d.targetVersion);
    unsigned desiredStale = d.spec.replicas > freshRunning
                                ? d.spec.replicas - freshRunning
                                : 0;
    if (stale > desiredStale) {
        // Oldest stale replica first (lowest container id).
        for (ContainerId cid : d.replicas) {
            Container &c = _containers[cid];
            if (c.state == ContainerState::stopped || c.draining ||
                c.version >= d.targetVersion) {
                continue;
            }
            if (c.state == ContainerState::running ||
                c.state == ContainerState::pending) {
                drainContainer(c);
                break;
            }
        }
    }
}

void
Orchestrator::autoscaleDeployment(DeploymentId id)
{
    Deployment &d = _deployments[id];
    unsigned routable = 0;
    unsigned active = 0;
    for (ContainerId cid : d.replicas) {
        const Container &c = _containers[cid];
        if (!c.routable())
            continue;
        ++routable;
        active += c.activeTasks;
    }
    if (routable == 0)
        return;
    double capacity = static_cast<double>(routable) *
                      std::max(d.spec.container.cores, 1e-9);
    double load = static_cast<double>(active) / capacity;
    if (load > _cfg.autoscaleHigh &&
        d.spec.replicas < d.spec.maxReplicas) {
        ++d.spec.replicas;
        ++_stats.autoscaleUps;
        traceEvent("deploy" + std::to_string(id) + ".scale_up." +
                   std::to_string(d.spec.replicas));
    } else if (load < _cfg.autoscaleLow &&
               d.spec.replicas > d.spec.minReplicas) {
        --d.spec.replicas;
        ++_stats.autoscaleDowns;
        traceEvent("deploy" + std::to_string(id) + ".scale_down." +
                   std::to_string(d.spec.replicas));
    }
}

void
Orchestrator::rebalanceOnce()
{
    if (!_net)
        return;
    for (std::size_t s = 0; s < _alloc.size(); ++s) {
        double phys = _sched.servers()[s]->numCores();
        if (_alloc[s].down || _alloc[s].cores <= phys + 1e-9)
            continue;
        // Physically overcommitted: move its smallest running
        // container to the emptiest server that takes it without
        // going over physical capacity.
        Container *victim = nullptr;
        for (Container &c : _containers) {
            if (c.server != s ||
                c.state != ContainerState::running || c.draining) {
                continue;
            }
            if (!victim || c.spec.cores < victim->spec.cores)
                victim = &c;
        }
        if (!victim)
            continue;
        std::size_t bestDst = noServer;
        double bestFree = -1.0;
        for (std::size_t t = 0; t < _alloc.size(); ++t) {
            if (t == s || !fits(t, victim->spec))
                continue;
            double tphys = _sched.servers()[t]->numCores();
            if (_alloc[t].cores + victim->spec.cores > tphys + 1e-9)
                continue;
            double free = tphys - _alloc[t].cores;
            if (free > bestFree) {
                bestFree = free;
                bestDst = t;
            }
        }
        if (bestDst != noServer && migrate(victim->id, bestDst))
            return; // one migration per pass: bounded churn
    }
}

// ---------------------------------------------------------------------
// Introspection and statistics

const Container &
Orchestrator::container(ContainerId c) const
{
    return _containers.at(c);
}

std::vector<ContainerId>
Orchestrator::containersOn(std::size_t server) const
{
    std::vector<ContainerId> out;
    for (const Container &c : _containers) {
        if (c.server == server && c.state != ContainerState::stopped)
            out.push_back(c.id);
    }
    return out;
}

unsigned
Orchestrator::runningReplicas(DeploymentId d) const
{
    unsigned n = 0;
    for (ContainerId cid : _deployments.at(d).replicas)
        n += _containers[cid].routable();
    return n;
}

const DeploymentSpec &
Orchestrator::deploymentSpec(DeploymentId d) const
{
    return _deployments.at(d).spec;
}

std::size_t
Orchestrator::containersRunning() const
{
    std::size_t n = 0;
    for (const Container &c : _containers)
        n += c.routable();
    return n;
}

void
Orchestrator::addStats(StatGroup &g) const
{
    g.add("containers_total",
          static_cast<std::uint64_t>(_containers.size()));
    g.add("containers_running",
          static_cast<std::uint64_t>(containersRunning()));
    g.add("placements", _stats.placements);
    g.add("reschedules", _stats.reschedules);
    g.add("migrations_started", _stats.migrationsStarted);
    g.add("migrations_completed", _stats.migrationsCompleted);
    g.add("migrations_aborted", _stats.migrationsAborted);
    g.add("migrated_bytes", _stats.migratedBytes);
    g.add("total_downtime_s", toSeconds(_stats.totalDowntime));
    g.add("interference_inflated_s", _stats.interferenceInflatedSec);
    g.add("remote_mem_inflated_s", _stats.remoteMemInflatedSec);
    g.add("tasks_routed", _stats.tasksRouted);
    g.add("tasks_deferred", _stats.tasksDeferred);
    g.add("autoscale_up", _stats.autoscaleUps);
    g.add("autoscale_down", _stats.autoscaleDowns);
}

// ---------------------------------------------------------------------
// Tracing

TraceManager *
Orchestrator::tracer()
{
    TraceManager *tr = _sim.tracer();
    if (!tr || !tr->wants(TraceCategory::orch))
        return nullptr;
    if (_eventTrack == noTraceTrack)
        _eventTrack = tr->track("orch", "events");
    return tr;
}

void
Orchestrator::traceContainer(Container &c, const std::string &state)
{
    TraceManager *tr = tracer();
    if (!tr)
        return;
    if (_containerTracks.size() <= c.id)
        _containerTracks.resize(c.id + 1, noTraceTrack);
    if (_containerTracks[c.id] == noTraceTrack) {
        _containerTracks[c.id] =
            tr->track("orch", "c" + std::to_string(c.id));
    }
    tr->transition(_containerTracks[c.id], TraceCategory::orch, state,
                   _sim.curTick());
}

void
Orchestrator::traceEvent(const std::string &name)
{
    if (TraceManager *tr = tracer())
        tr->instant(_eventTrack, TraceCategory::orch, name,
                    _sim.curTick());
}

} // namespace holdcsim
