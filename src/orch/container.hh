/**
 * @file
 * Container and deployment descriptions for the orchestration layer.
 *
 * A container is a long-lived unit of capacity: it reserves cores and
 * memory on one server and serves the tasks of jobs tagged with its
 * deployment's orchestration group. A deployment is a replicated set
 * of identical containers managed toward a desired replica count and
 * image version (rolling updates, autoscaling).
 *
 * Memory may be partially disaggregated (DRackSim-style): the
 * remote-memory fraction of a container stays on the server where the
 * container first started (its memory home) even when live migration
 * moves the compute elsewhere -- at the price of a fabric-latency
 * multiplier on service times.
 */

#ifndef HOLDCSIM_ORCH_CONTAINER_HH
#define HOLDCSIM_ORCH_CONTAINER_HH

#include <cstdint>
#include <string>

#include "network/fluid/net_model.hh"
#include "sim/types.hh"

namespace holdcsim {

/** Identifies one container instance (process-wide, never reused). */
using ContainerId = std::uint32_t;
/** Identifies one deployment. */
using DeploymentId = std::uint32_t;

/** "No server" sentinel for container placement fields. */
constexpr std::size_t noServer = ~static_cast<std::size_t>(0);

/** Resource request of one container replica. */
struct ContainerSpec {
    /** Requested cores (fractional allowed). */
    double cores = 1.0;
    /** Requested memory; also the live-migration pre-copy size. */
    Bytes memBytes = static_cast<Bytes>(512) << 20;
    /**
     * Fraction of memory on the disaggregated tier in [0, 1]. The
     * remote part is pinned to the memory home and accessed over the
     * fabric once the compute migrates away.
     */
    double remoteMemFrac = 0.0;
};

/** Container lifecycle. */
enum class ContainerState : std::uint8_t {
    /** Wants to run; no server found yet (reconciler retries). */
    pending,
    /** Placed and serving tasks. */
    running,
    /** Live migration pre-copy; still serving tasks on the source. */
    migrating,
    /** Stop-and-copy window: tasks stall until the switch-over. */
    downtime,
    /** No longer accepts tasks; stops when the last task finishes. */
    draining,
    /** Gone; resources released. */
    stopped,
};

const char *toString(ContainerState s);

/** Desired state of one replicated container set. */
struct DeploymentSpec {
    std::string name = "svc";
    ContainerSpec container;
    /** Desired replica count (autoscaler moves it within bounds). */
    unsigned replicas = 1;
    /** Autoscaler bounds on the replica count. */
    unsigned minReplicas = 1;
    unsigned maxReplicas = 8;
    /** Never co-locate two replicas on one server (best effort:
     *  relaxed when no other server fits, e.g. after crashes). */
    bool antiAffinity = false;
    /** Jobs with this orchestration group route here. */
    int group = 0;
    /** Image version; rolling updates raise the target. */
    int version = 1;
};

/** One container instance and its runtime state. */
struct Container {
    ContainerId id = 0;
    DeploymentId deployment = 0;
    ContainerSpec spec;
    ContainerState state = ContainerState::pending;
    /** Compute host (source host while migrating); noServer when
     *  pending/stopped. */
    std::size_t server = noServer;
    /** Memory home: server of the first placement (see file intro). */
    std::size_t memHome = noServer;
    int version = 1;
    /** Task attempts currently routed to this container. */
    unsigned activeTasks = 0;
    /** True while being retired by a rolling update / scale-down. */
    bool draining = false;

    /** Live-migration bookkeeping (valid in migrating/downtime). */
    struct Migration {
        std::size_t dst = noServer;
        /** Completed copy rounds (round 0 = full memory). */
        unsigned round = 0;
        /** Bytes of the in-flight round. */
        Bytes roundBytes = 0;
        FlowId flow = 0;
        bool inDowntime = false;
        Tick downtimeStart = 0;
        /** Bytes landed over all completed rounds. */
        Bytes bytesDone = 0;
    };
    Migration mig;

    /** Whether new tasks may be routed here right now. */
    bool
    routable() const
    {
        return !draining && (state == ContainerState::running ||
                             state == ContainerState::migrating);
    }
};

} // namespace holdcsim

#endif // HOLDCSIM_ORCH_CONTAINER_HH
