#include "one_shot.hh"

namespace holdcsim {

/**
 * The event itself: unregisters from its pool and parks itself on the
 * pool's free list after running. Safe because the engine never
 * touches an event object after process() returns -- even if the
 * pool immediately re-arms this same shot from inside the fired
 * function.
 */
class OneShotPool::Shot : public Event
{
  public:
    explicit Shot(OneShotPool &pool)
        : Event(pool._name, pool._priority), _pool(pool)
    {}

    void
    arm(std::function<void()> fn, std::size_t live_idx)
    {
        _fn = std::move(fn);
        _liveIdx = live_idx;
    }

    void
    process() override
    {
        auto fn = std::move(_fn);
        _fn = nullptr; // drop captures before running, like delete did
        _pool.recycle(this);
        fn();
    }

  private:
    friend class OneShotPool;

    OneShotPool &_pool;
    std::function<void()> _fn;
    std::size_t _liveIdx = 0;
};

OneShotPool::OneShotPool(Simulator &sim, std::string name, int priority)
    : _sim(sim), _name(std::move(name)), _priority(priority)
{}

OneShotPool::~OneShotPool()
{
    for (Shot *shot : _live) {
        if (shot->scheduled())
            _sim.deschedule(*shot);
        delete shot;
    }
    for (Shot *shot : _free)
        delete shot;
}

OneShotPool::Shot *
OneShotPool::acquire(std::function<void()> fn)
{
    Shot *shot;
    if (_free.empty()) {
        shot = new Shot(*this);
    } else {
        shot = _free.back();
        _free.pop_back();
    }
    shot->arm(std::move(fn), _live.size());
    _live.push_back(shot);
    return shot;
}

void
OneShotPool::schedule(Tick delay, std::function<void()> fn)
{
    _sim.scheduleAfter(*acquire(std::move(fn)), delay);
}

void
OneShotPool::scheduleAt(Tick when, std::function<void()> fn)
{
    _sim.schedule(*acquire(std::move(fn)), when);
}

void
OneShotPool::recycle(Shot *shot)
{
    std::size_t idx = shot->_liveIdx;
    std::size_t last = _live.size() - 1;
    if (idx != last) {
        _live[idx] = _live[last];
        _live[idx]->_liveIdx = idx;
    }
    _live.pop_back();
    _free.push_back(shot);
}

} // namespace holdcsim
