#include "one_shot.hh"

namespace holdcsim {

/**
 * The event itself: unregisters from its pool and deletes itself
 * after running. Safe because the engine never touches an event
 * object after process() returns.
 */
class OneShotPool::Shot : public Event
{
  public:
    Shot(OneShotPool &pool, std::function<void()> fn)
        : Event(pool._name), _pool(pool), _fn(std::move(fn))
    {}

    void
    process() override
    {
        auto fn = std::move(_fn);
        _pool._live.erase(this);
        delete this;
        fn();
    }

  private:
    OneShotPool &_pool;
    std::function<void()> _fn;
};

OneShotPool::OneShotPool(Simulator &sim, std::string name)
    : _sim(sim), _name(std::move(name))
{}

OneShotPool::~OneShotPool()
{
    for (Shot *shot : _live) {
        if (shot->scheduled())
            _sim.deschedule(*shot);
        delete shot;
    }
}

void
OneShotPool::schedule(Tick delay, std::function<void()> fn)
{
    auto *shot = new Shot(*this, std::move(fn));
    _live.insert(shot);
    _sim.scheduleAfter(*shot, delay);
}

} // namespace holdcsim
