/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  -- something happened that can never happen unless the
 *             simulator itself is broken; aborts.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); throws
 *             FatalError so tests and embedding applications can
 *             recover.
 * warn()   -- functionality may not behave exactly as intended.
 * inform() -- normal operating message.
 */

#ifndef HOLDCSIM_SIM_LOGGING_HH
#define HOLDCSIM_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace holdcsim {

/** Exception thrown by fatal(): a user-correctable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail {

/** Fold any streamable argument pack into one string. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Report a simulator bug and abort. */
#define HOLDCSIM_PANIC(...)                                             \
    ::holdcsim::detail::panicImpl(__FILE__, __LINE__,                   \
        ::holdcsim::detail::format(__VA_ARGS__))

/** Report an unrecoverable user error; throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::format(std::forward<Args>(args)...));
}

/** Report a condition that might indicate trouble. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::format(std::forward<Args>(args)...));
}

/** Report normal simulator status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::format(std::forward<Args>(args)...));
}

/** Globally silence warn()/inform() (useful in benchmarks). */
void setQuiet(bool quiet);

} // namespace holdcsim

#endif // HOLDCSIM_SIM_LOGGING_HH
