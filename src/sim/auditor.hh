/**
 * @file
 * Runtime invariant auditing.
 *
 * An InvariantAuditor periodically re-derives properties the model
 * must conserve -- task counts, energy accounting, event-queue
 * structure -- from live state and compares them against the tracked
 * totals. Silent state corruption (a leaked task, a divergent energy
 * counter, a dangling queue back-pointer) is caught within one audit
 * period instead of surfacing as a nonsense result hours later in a
 * campaign.
 *
 * Checks are plain lambdas returning an empty string when the
 * invariant holds, so any layer can register one without the kernel
 * depending on it; the violation hook lets the telemetry layer drop
 * an instant event on the trace the same way. On a violation the
 * auditor writes the simulator's structured abort dump and throws
 * SimAbortError, so campaign harnesses quarantine the replica instead
 * of losing the process.
 */

#ifndef HOLDCSIM_SIM_AUDITOR_HH
#define HOLDCSIM_SIM_AUDITOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "event.hh"
#include "simulator.hh"
#include "types.hh"

namespace holdcsim {

/** Periodic conservation/consistency checker. */
class InvariantAuditor
{
  public:
    /** One invariant: returns "" when it holds, else a description. */
    using CheckFn = std::function<std::string()>;

    /** Observer of violations: (check name, violation message). */
    using ViolationHook =
        std::function<void(const std::string &, const std::string &)>;

    /**
     * Audit every @p period ticks of @p sim. The event-queue
     * structural audit is registered as the built-in "event_queue"
     * check; model-level checks are added with addCheck().
     */
    InvariantAuditor(Simulator &sim, Tick period);

    /** Deschedules the pending audit event. */
    ~InvariantAuditor();

    InvariantAuditor(const InvariantAuditor &) = delete;
    InvariantAuditor &operator=(const InvariantAuditor &) = delete;

    /** Register invariant @p name. */
    void addCheck(std::string name, CheckFn fn);

    /**
     * Register the structural event-queue audit for a queue other
     * than the home simulator's, as check "event_queue[label]". The
     * built-in "event_queue" check covers only the auditor's own
     * simulator; a partitioned run (src/sim/pdes) registers one of
     * these per partition so every shard's calendar is audited at the
     * window boundaries. @p other is not owned and must outlive the
     * auditor.
     */
    void addEventQueueCheck(Simulator &other, const std::string &label);

    /**
     * Observe violations (e.g. emit a telemetry instant). Called
     * before the abort dump, so the trace records the violation even
     * when the run is then torn down.
     */
    void setViolationHook(ViolationHook hook)
    {
        _hook = std::move(hook);
    }

    /**
     * Whether a violation aborts the run (abortDump + SimAbortError,
     * the default) or is only counted and reported via the hook.
     */
    void setFatal(bool fatal) { _fatal = fatal; }

    /** Audit once now, then every period (background event). */
    void start();

    /** Disarm the periodic audit. */
    void stop();

    /**
     * Run every check once. @return "" when all hold, else the first
     * violation as "check: message" (after invoking the hook and,
     * when fatal, writing the abort dump and throwing SimAbortError).
     */
    std::string auditNow();

    /** Completed audit passes (all checks held). */
    std::uint64_t auditsPassed() const { return _auditsPassed; }

    /** Individual check evaluations. */
    std::uint64_t checksRun() const { return _checksRun; }

    /** Violations observed (at most 1 per run when fatal). */
    std::uint64_t violations() const { return _violations; }

    Tick period() const { return _period; }

  private:
    Simulator &_sim;
    Tick _period;
    std::vector<std::pair<std::string, CheckFn>> _checks;
    ViolationHook _hook;
    bool _fatal = true;
    bool _started = false;
    EventFunctionWrapper _event;

    std::uint64_t _auditsPassed = 0;
    std::uint64_t _checksRun = 0;
    std::uint64_t _violations = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_AUDITOR_HH
