/**
 * @file
 * Event base classes for the discrete-event kernel.
 *
 * Model code derives from Event and implements process(), or uses
 * EventFunctionWrapper to wrap a lambda. Events are owned by the model
 * (never by the queue); the queue only references scheduled events.
 */

#ifndef HOLDCSIM_SIM_EVENT_HH
#define HOLDCSIM_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "types.hh"

namespace holdcsim {

class EventQueue;

/**
 * An occurrence scheduled to happen at a simulated instant.
 *
 * Among events scheduled for the same tick, lower priority values run
 * first; ties are broken by scheduling order (FIFO), which makes the
 * simulation deterministic.
 */
class Event
{
  public:
    /** Scheduling priority; lower runs first within a tick. */
    enum Priority : int {
        /** Power-state bookkeeping runs before normal model events. */
        powerPriority = -10,
        /**
         * Cross-partition mailbox deliveries (src/sim/pdes). A
         * dedicated class so a delivery's order against same-tick
         * local events is fixed by priority alone, never by insertion
         * order -- deliveries are inserted at send time by the
         * sequential kernel but at window boundaries by the parallel
         * one, and the two must execute identically.
         */
        mailboxPriority = -5,
        /** Default for model events. */
        defaultPriority = 0,
        /** Statistics sampling runs after the model settles. */
        statsPriority = 10,
        /** Simulation-exit events run last. */
        exitPriority = 100,
    };

    explicit Event(std::string name = "event",
                   int priority = defaultPriority)
        : _name(std::move(name)), _priority(priority)
    {}

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    virtual ~Event();

    /** Invoked by the event queue when simulated time reaches when(). */
    virtual void process() = 0;

    /** Debug name of this event. */
    const std::string &name() const { return _name; }

    /** Priority within a tick (lower runs first). */
    int priority() const { return _priority; }

    /** Whether the event currently sits in an event queue. */
    bool scheduled() const { return _scheduled; }

    /**
     * Tick this event is scheduled for. Valid while scheduled(); after
     * the queue pops the event the field keeps the tick it fired at
     * (the run loop reads it to advance the clock).
     */
    Tick when() const { return _when; }

    /**
     * Background events (periodic samplers, policy heartbeats) do
     * not keep the simulation alive: run() returns once only
     * background events remain. Must be set while unscheduled.
     */
    bool background() const { return _background; }
    void setBackground(bool background);

  private:
    friend class EventQueue;

    /** _qBucket value meaning "in the overflow heap, not a bucket". */
    static constexpr std::uint32_t inHeap = 0xffffffffu;

    std::string _name;
    int _priority;
    bool _background = false;
    bool _scheduled = false;
    Tick _when = 0;
    /** Calendar bucket (physical ring index) holding this event, or
     *  Event::inHeap when it sits in the overflow heap. */
    std::uint32_t _qBucket = inHeap;
    /** Slot inside that bucket's vector, or heap index. */
    std::size_t _qSlot = 0;
};

/**
 * Event that runs a std::function. The workhorse for model code:
 *
 *   EventFunctionWrapper ev([this]{ finishTask(); }, "finish");
 *   sim.schedule(ev, sim.curTick() + delay);
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> fn,
                         std::string name = "lambda",
                         int priority = defaultPriority)
        : Event(std::move(name), priority), _fn(std::move(fn))
    {}

    void process() override { _fn(); }

  private:
    std::function<void()> _fn;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_EVENT_HH
