#include "event_queue.hh"

#include <utility>

#include "logging.hh"

namespace holdcsim {

Event::~Event()
{
    // An event must not be destroyed while a queue still references
    // it; the queue would later touch freed memory.
    if (_scheduled)
        HOLDCSIM_PANIC("event '", _name, "' destroyed while scheduled");
}

void
Event::setBackground(bool background)
{
    // Flipping while scheduled would corrupt the queue's foreground
    // accounting.
    if (_scheduled)
        HOLDCSIM_PANIC("event '", _name,
                       "' changed background-ness while scheduled");
    _background = background;
}

EventQueue::~EventQueue()
{
    // Mark survivors unscheduled so their destructors don't panic.
    for (auto &entry : _heap)
        entry.event->_scheduled = false;
}

bool
EventQueue::earlier(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.sequence < b.sequence;
}

void
EventQueue::place(std::size_t idx)
{
    _heap[idx].event->_heapIndex = idx;
}

void
EventQueue::siftUp(std::size_t idx)
{
    while (idx > 0) {
        std::size_t parent = (idx - 1) / 2;
        if (!earlier(_heap[idx], _heap[parent]))
            break;
        std::swap(_heap[idx], _heap[parent]);
        place(idx);
        place(parent);
        idx = parent;
    }
}

void
EventQueue::siftDown(std::size_t idx)
{
    const std::size_t n = _heap.size();
    for (;;) {
        std::size_t left = 2 * idx + 1;
        std::size_t right = left + 1;
        std::size_t smallest = idx;
        if (left < n && earlier(_heap[left], _heap[smallest]))
            smallest = left;
        if (right < n && earlier(_heap[right], _heap[smallest]))
            smallest = right;
        if (smallest == idx)
            return;
        std::swap(_heap[idx], _heap[smallest]);
        place(idx);
        place(smallest);
        idx = smallest;
    }
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    if (ev._scheduled)
        HOLDCSIM_PANIC("event '", ev.name(), "' scheduled twice");
    ev._scheduled = true;
    ev._when = when;
    _heap.push_back(Entry{when, ev.priority(), _nextSequence++, &ev});
    place(_heap.size() - 1);
    siftUp(_heap.size() - 1);
    if (ev.background())
        ++_liveBackground;
}

void
EventQueue::removeAt(std::size_t idx)
{
    std::size_t last = _heap.size() - 1;
    if (idx != last) {
        std::swap(_heap[idx], _heap[last]);
        place(idx);
    }
    _heap.pop_back();
    if (idx != _heap.size()) {
        // Restore the heap property for the moved entry.
        siftUp(idx);
        siftDown(idx);
    }
}

void
EventQueue::deschedule(Event &ev)
{
    if (!ev._scheduled)
        HOLDCSIM_PANIC("deschedule of unscheduled event '", ev.name(),
                       "'");
    std::size_t idx = ev._heapIndex;
    if (idx >= _heap.size() || _heap[idx].event != &ev)
        HOLDCSIM_PANIC("event '", ev.name(), "' has a corrupt heap slot");
    ev._scheduled = false;
    if (ev.background())
        --_liveBackground;
    removeAt(idx);
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev._scheduled)
        deschedule(ev);
    schedule(ev, when);
}

Tick
EventQueue::nextTick() const
{
    if (_heap.empty())
        HOLDCSIM_PANIC("nextTick() on empty event queue");
    return _heap.front().when;
}

Event &
EventQueue::pop()
{
    if (_heap.empty())
        HOLDCSIM_PANIC("pop() on empty event queue");
    Event &ev = *_heap.front().event;
    ev._scheduled = false;
    if (ev.background())
        --_liveBackground;
    removeAt(0);
    return ev;
}

} // namespace holdcsim
