#include "event_queue.hh"

#include <algorithm>
#include <utility>

#include "logging.hh"

namespace holdcsim {

namespace {

/** Smallest calendar ring (power of two). */
constexpr std::size_t numBuckets = 256;
/** Largest calendar ring: past this, spill to the overflow heap. */
constexpr std::size_t maxBuckets = std::size_t{1} << 18;
/** Widest bucket the calibrator may pick (2^36 ticks ~ 69 s). */
constexpr unsigned maxBucketShift = 36;
/** Inter-pop gaps sampled between bucket-width recalibrations. */
constexpr std::uint64_t calibrateGaps = 8192;
/** Head buckets larger than this are spilled into the overflow heap
 *  before popping. findMin() re-scans the whole head bucket on every
 *  pop, so draining a burst of k same-bucket events costs O(k^2)
 *  comparisons; past this size the one-time O(k log n) spill wins
 *  (measured: a 100k same-tick bulk load dropped from ~46 s to
 *  milliseconds). */
constexpr std::size_t headSpillThreshold = 64;

} // namespace

Event::~Event()
{
    // An event must not be destroyed while a queue still references
    // it; the queue would later touch freed memory.
    if (_scheduled)
        HOLDCSIM_PANIC("event '", _name, "' destroyed while scheduled");
}

void
Event::setBackground(bool background)
{
    // Flipping while scheduled would corrupt the queue's foreground
    // accounting.
    if (_scheduled)
        HOLDCSIM_PANIC("event '", _name,
                       "' changed background-ness while scheduled");
    _background = background;
}

EventQueue::EventQueue(Backend backend) : _backend(backend)
{
    if (_backend == Backend::calendar) {
        _buckets.resize(numBuckets);
        _bucketMask = numBuckets - 1;
    }
}

EventQueue::~EventQueue()
{
    // Mark survivors unscheduled so their destructors don't panic.
    for (auto &bucket : _buckets)
        for (auto &entry : bucket)
            entry.event->_scheduled = false;
    for (auto &entry : _heap)
        entry.event->_scheduled = false;
}

bool
EventQueue::earlier(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.sequence < b.sequence;
}

void
EventQueue::heapPlace(std::size_t idx)
{
    _heap[idx].event->_qSlot = idx;
}

void
EventQueue::heapSiftUp(std::size_t idx)
{
    while (idx > 0) {
        std::size_t parent = (idx - 1) / 2;
        if (!earlier(_heap[idx], _heap[parent]))
            break;
        std::swap(_heap[idx], _heap[parent]);
        heapPlace(idx);
        heapPlace(parent);
        idx = parent;
    }
}

void
EventQueue::heapSiftDown(std::size_t idx)
{
    const std::size_t n = _heap.size();
    for (;;) {
        std::size_t left = 2 * idx + 1;
        std::size_t right = left + 1;
        std::size_t smallest = idx;
        if (left < n && earlier(_heap[left], _heap[smallest]))
            smallest = left;
        if (right < n && earlier(_heap[right], _heap[smallest]))
            smallest = right;
        if (smallest == idx)
            return;
        std::swap(_heap[idx], _heap[smallest]);
        heapPlace(idx);
        heapPlace(smallest);
        idx = smallest;
    }
}

void
EventQueue::heapInsert(const Entry &e)
{
    e.event->_qBucket = Event::inHeap;
    _heap.push_back(e);
    heapPlace(_heap.size() - 1);
    heapSiftUp(_heap.size() - 1);
}

void
EventQueue::heapRemoveAt(std::size_t idx)
{
    std::size_t last = _heap.size() - 1;
    if (idx != last) {
        std::swap(_heap[idx], _heap[last]);
        heapPlace(idx);
    }
    _heap.pop_back();
    if (idx != _heap.size()) {
        // Restore the heap property for the moved entry.
        heapSiftUp(idx);
        heapSiftDown(idx);
    }
}

void
EventQueue::bucketInsert(std::size_t bucket, const Entry &e)
{
    auto &vec = _buckets[bucket];
    e.event->_qBucket = static_cast<std::uint32_t>(bucket);
    e.event->_qSlot = vec.size();
    vec.push_back(e);
    ++_bucketCount;
}

void
EventQueue::bucketRemoveAt(std::size_t bucket, std::size_t slot)
{
    auto &vec = _buckets[bucket];
    std::size_t last = vec.size() - 1;
    if (slot != last) {
        vec[slot] = vec[last];
        vec[slot].event->_qSlot = slot;
    }
    vec.pop_back();
    --_bucketCount;
}

void
EventQueue::insertEntry(const Entry &e)
{
    if (_backend == Backend::binaryHeap) {
        heapInsert(e);
        return;
    }
    if (e.when < _windowStart) {
        // Raw-queue users may schedule behind the window start; the
        // head bucket is always scanned first, so ordering holds.
        bucketInsert(_head, e);
        ++_counters.clampedSchedules;
        return;
    }
    Tick d = (e.when - _windowStart) >> _bucketShift;
    if (d < _buckets.size()) {
        bucketInsert((_head + static_cast<std::size_t>(d)) & _bucketMask,
                     e);
        ++_counters.bucketSchedules;
    } else {
        heapInsert(e);
        ++_counters.heapSchedules;
    }
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    if (ev._scheduled)
        HOLDCSIM_PANIC("event '", ev.name(), "' scheduled twice");
    ev._scheduled = true;
    ev._when = when;
    insertEntry(Entry{when, ev.priority(), _nextSequence++, &ev});
    if (ev.background())
        ++_liveBackground;
    ++_counters.schedules;
    if (size() > _counters.peakSize)
        _counters.peakSize = size();
    // Dynamic calendar: keep ~0.5..8 live entries per bucket by
    // doubling the ring when the population outgrows it. Total size
    // (not just bucket occupancy) drives the trigger, because a
    // too-small window parks the population in the overflow heap --
    // exactly the state a bigger ring fixes. Driven purely by event
    // counts, so every run resizes identically.
    if (_backend == Backend::calendar &&
        _buckets.size() < maxBuckets && size() > 2 * _buckets.size())
        rehash(_bucketShift, _buckets.size() * 2);
}

void
EventQueue::deschedule(Event &ev)
{
    if (!ev._scheduled)
        HOLDCSIM_PANIC("deschedule of unscheduled event '", ev.name(),
                       "'");
    if (ev._qBucket == Event::inHeap) {
        std::size_t idx = ev._qSlot;
        if (idx >= _heap.size() || _heap[idx].event != &ev)
            HOLDCSIM_PANIC("event '", ev.name(),
                           "' has a corrupt heap slot");
        ev._scheduled = false;
        if (ev.background())
            --_liveBackground;
        heapRemoveAt(idx);
        return;
    }
    std::size_t bucket = ev._qBucket;
    std::size_t slot = ev._qSlot;
    if (bucket >= _buckets.size() || slot >= _buckets[bucket].size() ||
        _buckets[bucket][slot].event != &ev)
        HOLDCSIM_PANIC("event '", ev.name(),
                       "' has a corrupt bucket slot");
    ev._scheduled = false;
    if (ev.background())
        --_liveBackground;
    bucketRemoveAt(bucket, slot);
}

void
EventQueue::reschedule(Event &ev, Tick when)
{
    if (ev._scheduled) {
        // Same-tick early-out: keep the event's FIFO position and
        // skip the remove/insert entirely.
        if (ev._when == when)
            return;
        deschedule(ev);
    }
    schedule(ev, when);
}

bool
EventQueue::findMin(MinRef &out) const
{
    if (_bucketCount == 0) {
        if (_heap.empty())
            return false;
        out = MinRef{true, 0, 0};
        return true;
    }
    // Advance the head over drained buckets; the head only ever moves
    // forward, so the sweep is O(1) amortized per pop.
    while (_buckets[_head].empty()) {
        _head = (_head + 1) & _bucketMask;
        _windowStart += bucketWidth();
    }
    const auto &vec = _buckets[_head];
    std::size_t best = 0;
    for (std::size_t i = 1; i < vec.size(); ++i) {
        if (earlier(vec[i], vec[best]))
            best = i;
    }
    // The overflow heap can hold an earlier event than the head
    // bucket (the window may have slid past a spilled tick), so the
    // two candidates are always compared on the full ordering key.
    if (!_heap.empty() && earlier(_heap.front(), vec[best]))
        out = MinRef{true, 0, 0};
    else
        out = MinRef{false, _head, best};
    return true;
}

void
EventQueue::rebaseOntoHeap()
{
    // Jump the window to the heap's earliest tick and pull now-in-
    // window entries into the calendar (lazy migration). Migration is
    // capped at the head-spill threshold: a dense same-tick burst
    // would otherwise shuttle between one bucket and the heap on
    // every pop (spillOversizedHead() moves it out, the next rebase
    // would move it all back). Entries left in the heap stay visible
    // to findMin(), which always compares both containers.
    _windowStart = (_heap.front().when >> _bucketShift) << _bucketShift;
    std::size_t migrated = 0;
    while (!_heap.empty() && migrated < headSpillThreshold &&
           ((_heap.front().when - _windowStart) >> _bucketShift) <
               _buckets.size()) {
        Entry e = _heap.front();
        heapRemoveAt(0);
        std::size_t d = static_cast<std::size_t>(
            (e.when - _windowStart) >> _bucketShift);
        bucketInsert((_head + d) & _bucketMask, e);
        ++_counters.migratedEntries;
        ++migrated;
    }
    ++_counters.rebases;
}

void
EventQueue::spillOversizedHead()
{
    if (_bucketCount == 0)
        return;
    while (_buckets[_head].empty()) {
        _head = (_head + 1) & _bucketMask;
        _windowStart += bucketWidth();
    }
    auto &vec = _buckets[_head];
    if (vec.size() <= headSpillThreshold)
        return;
    // Ordering is preserved: findMin() always compares the heap front
    // against the head-bucket minimum on the full (when, priority,
    // sequence) key, so entries pop in the same order from either
    // container.
    for (const Entry &e : vec)
        heapInsert(e);
    _bucketCount -= vec.size();
    _counters.spilledEntries += vec.size();
    ++_counters.headSpills;
    vec.clear();
}

void
EventQueue::observePopGap(Tick popped)
{
    if (_poppedOnce && popped >= _lastPopTick) {
        _gapSum += static_cast<double>(popped - _lastPopTick);
        ++_gapCount;
    }
    _lastPopTick = popped;
    _poppedOnce = true;
    if (_gapCount < calibrateGaps)
        return;
    // Aim for ~2 mean inter-pop gaps per bucket: head-bucket scans
    // stay short while the 256-bucket window still covers hundreds
    // of upcoming pops. Only driven by simulated ticks, so every run
    // recalibrates identically.
    double target = 2.0 * _gapSum / static_cast<double>(_gapCount);
    _gapSum = 0.0;
    _gapCount = 0;
    // Smallest power-of-two width >= target. Rounding up matters:
    // with ~size live entries and ~size buckets, width >= 2 mean gaps
    // keeps the window at >= 2x the active event span, so steady-state
    // inserts land in buckets instead of spilling to the heap.
    unsigned shift = 0;
    while (shift < maxBucketShift &&
           static_cast<double>(Tick{1} << shift) < target)
        ++shift;
    unsigned drift = shift > _bucketShift ? shift - _bucketShift
                                          : _bucketShift - shift;
    if (drift >= 2)
        rehash(shift, _buckets.size());
}

void
EventQueue::rehash(unsigned new_shift, std::size_t new_bucket_count)
{
    std::vector<Entry> entries;
    entries.reserve(size());
    for (auto &bucket : _buckets) {
        entries.insert(entries.end(), bucket.begin(), bucket.end());
        bucket.clear();
    }
    // Pull the overflow heap in too: under the new geometry (wider
    // window or wider buckets) much of it typically fits the ring.
    entries.insert(entries.end(), _heap.begin(), _heap.end());
    _heap.clear();
    _bucketCount = 0;
    _buckets.resize(new_bucket_count);
    _bucketMask = new_bucket_count - 1;
    _bucketShift = new_shift;
    _head = 0;
    // Anchor the window below everything live so nothing is clamped.
    Tick min_when = _lastPopTick;
    for (const Entry &e : entries)
        min_when = std::min(min_when, e.when);
    _windowStart = (min_when >> new_shift) << new_shift;
    for (const Entry &e : entries)
        insertEntry(e);
    ++_counters.recalibrations;
}

std::string
EventQueue::auditConsistency() const
{
    std::size_t counted = 0;
    std::size_t background = 0;
    for (std::size_t b = 0; b < _buckets.size(); ++b) {
        const auto &vec = _buckets[b];
        // Ring distance of this bucket from the window head; its
        // entries must fall inside the bucket's tick span (clamped
        // behind-the-window entries are legal only in the head
        // bucket, i.e. at distance 0).
        std::size_t d = (b - _head) & _bucketMask;
        for (std::size_t s = 0; s < vec.size(); ++s) {
            const Entry &e = vec[s];
            if (!e.event)
                return detail::format("bucket ", b, " slot ", s,
                                      ": null event pointer");
            const Event &ev = *e.event;
            if (!ev._scheduled)
                return detail::format("bucket entry '", ev.name(),
                                      "' not marked scheduled");
            if (ev._when != e.when || ev._priority != e.priority)
                return detail::format(
                    "bucket entry '", ev.name(),
                    "' disagrees with its event (entry when=", e.when,
                    " prio=", e.priority, ", event when=", ev._when,
                    " prio=", ev._priority, ")");
            if (ev._qBucket != b || ev._qSlot != s)
                return detail::format(
                    "event '", ev.name(), "' back-pointer (",
                    ev._qBucket, ",", ev._qSlot,
                    ") does not match its location (", b, ",", s, ")");
            if (e.sequence >= _nextSequence)
                return detail::format("event '", ev.name(),
                                      "' has sequence ", e.sequence,
                                      " >= next sequence ",
                                      _nextSequence);
            if (e.when < _windowStart) {
                if (d != 0)
                    return detail::format(
                        "behind-window event '", ev.name(), "' (tick ",
                        e.when, " < window start ", _windowStart,
                        ") outside the head bucket (distance ", d,
                        ")");
            } else if (((e.when - _windowStart) >> _bucketShift) != d) {
                return detail::format(
                    "event '", ev.name(), "' at tick ", e.when,
                    " filed at ring distance ", d,
                    " but belongs at distance ",
                    (e.when - _windowStart) >> _bucketShift,
                    " (window start ", _windowStart, ", width ",
                    bucketWidth(), ")");
            }
            if (ev.background())
                ++background;
            ++counted;
        }
    }
    if (counted != _bucketCount)
        return detail::format("bucket occupancy ", counted,
                              " != accounted count ", _bucketCount);
    if (_backend == Backend::binaryHeap && counted != 0)
        return detail::format("binary-heap backend holds ", counted,
                              " calendar entries");

    for (std::size_t i = 0; i < _heap.size(); ++i) {
        const Entry &e = _heap[i];
        if (!e.event)
            return detail::format("heap slot ", i,
                                  ": null event pointer");
        const Event &ev = *e.event;
        if (!ev._scheduled)
            return detail::format("heap entry '", ev.name(),
                                  "' not marked scheduled");
        if (ev._when != e.when || ev._priority != e.priority)
            return detail::format(
                "heap entry '", ev.name(),
                "' disagrees with its event (entry when=", e.when,
                " prio=", e.priority, ", event when=", ev._when,
                " prio=", ev._priority, ")");
        if (ev._qBucket != Event::inHeap || ev._qSlot != i)
            return detail::format("event '", ev.name(),
                                  "' back-pointer (", ev._qBucket, ",",
                                  ev._qSlot,
                                  ") does not match heap slot ", i);
        if (e.sequence >= _nextSequence)
            return detail::format("event '", ev.name(),
                                  "' has sequence ", e.sequence,
                                  " >= next sequence ", _nextSequence);
        if (i > 0 && earlier(e, _heap[(i - 1) / 2]))
            return detail::format(
                "heap property violated at slot ", i, " ('", ev.name(),
                "' tick ", e.when, " earlier than parent '",
                _heap[(i - 1) / 2].event->name(), "' tick ",
                _heap[(i - 1) / 2].when, ")");
        if (ev.background())
            ++background;
    }

    if (background != _liveBackground)
        return detail::format("live background events ", background,
                              " != accounted count ", _liveBackground);
    return {};
}

Tick
EventQueue::nextTick() const
{
    MinRef m;
    if (!findMin(m))
        HOLDCSIM_PANIC("nextTick() on empty event queue");
    return m.inHeap ? _heap.front().when
                    : _buckets[m.bucket][m.slot].when;
}

Event &
EventQueue::pop()
{
    Event *ev = popIfBefore(maxTick, /*unbounded=*/true);
    // Unbounded extraction never declines; findMin panics on empty.
    return *ev;
}

Event *
EventQueue::popIfBefore(Tick bound, bool unbounded)
{
    if (_backend == Backend::calendar) {
        if (_bucketCount == 0 && !_heap.empty())
            rebaseOntoHeap();
        spillOversizedHead();
    }
    MinRef m;
    if (!findMin(m))
        HOLDCSIM_PANIC("pop() on empty event queue");
    Entry e = m.inHeap ? _heap.front() : _buckets[m.bucket][m.slot];
    if (!unbounded && e.when >= bound)
        return nullptr;
    if (m.inHeap) {
        heapRemoveAt(0);
        ++_counters.heapPops;
    } else {
        bucketRemoveAt(m.bucket, m.slot);
        ++_counters.bucketPops;
    }
    Event &ev = *e.event;
    ev._scheduled = false;
    if (ev.background())
        --_liveBackground;
    ++_counters.pops;
    if (_backend == Backend::calendar) {
        // Halve the ring when the population has collapsed well below
        // it (hysteresis: grow at >2x, shrink at <1/8x -- never both).
        if (_buckets.size() > numBuckets &&
            size() < _buckets.size() / 8)
            rehash(_bucketShift, _buckets.size() / 2);
        observePopGap(e.when);
    }
    return &ev;
}

} // namespace holdcsim
