#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace holdcsim {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace holdcsim
