/**
 * @file
 * Minimal INI-style configuration store.
 *
 * HolDCSim experiments are "configurable by user script" (paper
 * section III); this parser accepts the classic
 *
 *   [section]
 *   key = value   ; comment
 *
 * format and exposes typed getters with defaults. Keys are addressed
 * as "section.key"; keys before any section header live in the ""
 * section and are addressed by bare name.
 */

#ifndef HOLDCSIM_SIM_CONFIG_HH
#define HOLDCSIM_SIM_CONFIG_HH

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace holdcsim {

/** Parsed key/value configuration with typed access. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse from a stream. Throws FatalError on malformed input.
     * @p origin names the source in diagnostics ("file:line").
     */
    static Config parse(std::istream &in,
                        const std::string &origin = "<config>");

    /** Parse from a string (convenience for tests). */
    static Config parseString(const std::string &text);

    /** Load from a file. Throws FatalError if unreadable. */
    static Config load(const std::string &path);

    /** Whether "section.key" exists. */
    bool has(const std::string &key) const;

    /** Explicitly set a value (programmatic configs, overrides). */
    void set(const std::string &key, const std::string &value);

    /** String getter; throws FatalError when the key is missing. */
    std::string getString(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Integer getter; throws FatalError on missing key / bad value. */
    std::int64_t getInt(const std::string &key) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;

    /** Floating-point getter. */
    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double fallback) const;

    /** Boolean getter; accepts true/false/yes/no/on/off/1/0. */
    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** All keys, sorted (stable iteration for dumps and tests). */
    std::vector<std::string> keys() const;

    /**
     * Source location of @p key as "file:line", or "" when the key
     * is missing or was set() programmatically. Diagnostics (unknown
     * keys, malformed values) cite it so users can fix the exact
     * config line.
     */
    std::string origin(const std::string &key) const;

  private:
    struct Entry {
        std::string value;
        std::string file; ///< parse origin ("" = programmatic set())
        int line = 0;
    };

    /** " (file:line)" suffix for diagnostics, "" when unknown. */
    std::string locate(const std::string &key) const;

    std::map<std::string, Entry> _values;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_CONFIG_HH
