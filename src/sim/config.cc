#include "config.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "logging.hh"

namespace holdcsim {

namespace {

std::string
strip(const std::string &s)
{
    auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

} // namespace

Config
Config::parse(std::istream &in, const std::string &origin)
{
    Config cfg;
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments (';' or '#').
        auto comment = line.find_first_of(";#");
        if (comment != std::string::npos)
            line.erase(comment);
        line = strip(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal(origin, ":", lineno, ": unterminated section");
            section = strip(line.substr(1, line.size() - 2));
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal(origin, ":", lineno, ": expected key = value, got '",
                  line, "'");
        std::string key = strip(line.substr(0, eq));
        std::string value = strip(line.substr(eq + 1));
        if (key.empty())
            fatal(origin, ":", lineno, ": empty key");
        if (!section.empty())
            key = section + "." + key;
        cfg._values[key] = Entry{value, origin, lineno};
    }
    return cfg;
}

Config
Config::parseString(const std::string &text)
{
    std::istringstream in(text);
    return parse(in, "<string>");
}

Config
Config::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    return parse(in, path);
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) != 0;
}

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = Entry{value, "", 0};
}

std::string
Config::origin(const std::string &key) const
{
    auto it = _values.find(key);
    if (it == _values.end() || it->second.file.empty())
        return "";
    return it->second.file + ":" + std::to_string(it->second.line);
}

std::string
Config::locate(const std::string &key) const
{
    std::string o = origin(key);
    return o.empty() ? "" : " (" + o + ")";
}

std::string
Config::getString(const std::string &key) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        fatal("missing config key '", key, "'");
    return it->second.value;
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    auto it = _values.find(key);
    return it == _values.end() ? fallback : it->second.value;
}

std::int64_t
Config::getInt(const std::string &key) const
{
    std::string v = getString(key);
    try {
        std::size_t pos = 0;
        std::int64_t result = std::stoll(v, &pos);
        if (pos != v.size())
            fatal("config key '", key, "'", locate(key),
                  ": trailing junk in '", v, "'");
        return result;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("config key '", key, "'", locate(key), ": '", v,
              "' is not an integer");
    }
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    return has(key) ? getInt(key) : fallback;
}

double
Config::getDouble(const std::string &key) const
{
    std::string v = getString(key);
    try {
        std::size_t pos = 0;
        double result = std::stod(v, &pos);
        if (pos != v.size())
            fatal("config key '", key, "'", locate(key),
                  ": trailing junk in '", v, "'");
        return result;
    } catch (const FatalError &) {
        throw;
    } catch (const std::exception &) {
        fatal("config key '", key, "'", locate(key), ": '", v,
              "' is not a number");
    }
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    return has(key) ? getDouble(key) : fallback;
}

bool
Config::getBool(const std::string &key) const
{
    std::string v = lower(getString(key));
    if (v == "true" || v == "yes" || v == "on" || v == "1")
        return true;
    if (v == "false" || v == "no" || v == "off" || v == "0")
        return false;
    fatal("config key '", key, "'", locate(key), ": '", v,
          "' is not a boolean");
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    return has(key) ? getBool(key) : fallback;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(_values.size());
    for (const auto &[key, value] : _values)
        out.push_back(key);
    return out;
}

} // namespace holdcsim
