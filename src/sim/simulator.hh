/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns the event queue and the simulated clock. Model
 * components keep a reference to their Simulator and schedule events
 * against it. One Simulator per experiment; no global state, so tests
 * and parameter sweeps can run many simulations in one process.
 */

#ifndef HOLDCSIM_SIM_SIMULATOR_HH
#define HOLDCSIM_SIM_SIMULATOR_HH

#include <cstdint>

#include "event_queue.hh"
#include "types.hh"

namespace holdcsim {

class TraceManager;

/**
 * Observer hooked around every event dispatch (opt-in, e.g. the
 * telemetry KernelProfiler). The kernel never depends on a concrete
 * implementation, and the run loop is compiled twice -- with and
 * without probe calls -- so an uninstalled probe costs nothing per
 * event: run()/runUntil() pick the variant once at entry.
 */
class KernelProbe
{
  public:
    virtual ~KernelProbe() = default;

    /**
     * About to process @p ev. @p queued is the number of events that
     * were in the queue when this one was popped (itself included).
     * Implementations must not keep a reference to @p ev: one-shot
     * events may delete themselves inside process().
     */
    virtual void beginEvent(const Event &ev, std::size_t queued) = 0;

    /** The event just returned from process(). */
    virtual void endEvent() = 0;
};

/** Event-driven simulation engine with a nanosecond clock. */
class Simulator
{
  public:
    explicit Simulator(
        EventQueue::Backend backend = EventQueue::Backend::calendar)
        : _queue(backend)
    {}
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Number of events processed so far (engine throughput metric). */
    std::uint64_t eventsProcessed() const { return _eventsProcessed; }

    /** Schedule @p ev at absolute tick @p when (>= curTick()). */
    void schedule(Event &ev, Tick when);

    /** Schedule @p ev at curTick() + @p delay. */
    void scheduleAfter(Event &ev, Tick delay)
    {
        schedule(ev, _curTick + delay);
    }

    /** Remove a scheduled event. */
    void deschedule(Event &ev) { _queue.deschedule(ev); }

    /**
     * Move a scheduled (or unscheduled) event to @p when. A no-op
     * when the event is already scheduled for exactly @p when (the
     * event keeps its FIFO position).
     */
    void reschedule(Event &ev, Tick when);

    /** Whether any events remain. */
    bool hasPendingEvents() const { return !_queue.empty(); }

    /** Tick of the next pending event. @pre hasPendingEvents(). */
    Tick nextEventTick() { return _queue.nextTick(); }

    /**
     * Run until the event queue drains or stop() is called.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Run until simulated time would exceed @p limit. Events at
     * exactly @p limit still execute -- including events they
     * schedule for that same tick, in (priority, FIFO) order -- so
     * the limit is inclusive. The clock is left at @p limit, unless
     * stop() cut the run short, in which case it stays at the last
     * processed event's tick.
     */
    Tick runUntil(Tick limit);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { _stopRequested = true; }

    /** Direct access to the queue (tests and advanced harnesses). */
    EventQueue &eventQueue() { return _queue; }
    const EventQueue &eventQueue() const { return _queue; }

    /**
     * Install (or clear, with nullptr) the timeline tracer. The
     * kernel itself never dereferences it -- the pointer only rides
     * here so instrumented components can reach the tracer through
     * the Simulator they already hold. Not owned.
     */
    void setTracer(TraceManager *tracer) { _tracer = tracer; }

    /** Installed tracer, or nullptr when tracing is off. */
    TraceManager *tracer() const { return _tracer; }

    /**
     * Install (or clear) the kernel profiling probe. Not owned.
     * Observed at the next run()/runUntil() entry: installing or
     * clearing a probe from inside a running event takes effect only
     * once the current run loop returns.
     */
    void setProbe(KernelProbe *probe) { _probe = probe; }

    /** Installed probe, or nullptr when profiling is off. */
    KernelProbe *probe() const { return _probe; }

  private:
    /** Pop the next event and process it (shared run-loop body). */
    template <bool WithProbe> void processOne();
    template <bool WithProbe> Tick runLoop();
    template <bool WithProbe> Tick runUntilLoop(Tick limit);

    EventQueue _queue;
    Tick _curTick = 0;
    std::uint64_t _eventsProcessed = 0;
    bool _stopRequested = false;
    TraceManager *_tracer = nullptr;
    KernelProbe *_probe = nullptr;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_SIMULATOR_HH
