/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns the event queue and the simulated clock. Model
 * components keep a reference to their Simulator and schedule events
 * against it. One Simulator per experiment; no global state, so tests
 * and parameter sweeps can run many simulations in one process.
 */

#ifndef HOLDCSIM_SIM_SIMULATOR_HH
#define HOLDCSIM_SIM_SIMULATOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "event_queue.hh"
#include "types.hh"

namespace holdcsim {

class TimerWheel;
class TraceManager;

/**
 * A run was cancelled from outside the model: the cooperative
 * interrupt flag was raised (watchdog, SIGINT/SIGTERM) or the
 * simulated-event budget ran out. The simulator itself is left in a
 * consistent state; the run can be inspected, dumped or abandoned.
 */
class SimInterrupted : public std::runtime_error
{
  public:
    explicit SimInterrupted(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * The simulator detected an internal inconsistency (an event
 * scheduled into the past, a violated runtime invariant). Thrown
 * after Simulator::abortDump() has written its post-mortem, so
 * harnesses can quarantine the run instead of losing the process.
 */
class SimAbortError : public std::runtime_error
{
  public:
    explicit SimAbortError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Observer hooked around every event dispatch (opt-in, e.g. the
 * telemetry KernelProfiler). The kernel never depends on a concrete
 * implementation, and the run loop is compiled twice -- with and
 * without probe calls -- so an uninstalled probe costs nothing per
 * event: run()/runUntil() pick the variant once at entry.
 */
class KernelProbe
{
  public:
    virtual ~KernelProbe() = default;

    /**
     * About to process @p ev. @p queued is the number of events that
     * were in the queue when this one was popped (itself included).
     * Implementations must not keep a reference to @p ev: one-shot
     * events may delete themselves inside process().
     */
    virtual void beginEvent(const Event &ev, std::size_t queued) = 0;

    /** The event just returned from process(). */
    virtual void endEvent() = 0;

    /**
     * Write whatever recent-event history the probe keeps (the
     * telemetry KernelProfiler keeps a last-N ring) into an abort
     * dump. Default: nothing.
     */
    virtual void dumpRecent(std::ostream &os) const { (void)os; }
};

/** Event-driven simulation engine with a nanosecond clock. */
class Simulator
{
  public:
    explicit Simulator(
        EventQueue::Backend backend = EventQueue::Backend::calendar)
        : _queue(backend)
    {}
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Number of events processed so far (engine throughput metric). */
    std::uint64_t eventsProcessed() const { return _eventsProcessed; }

    /** Schedule @p ev at absolute tick @p when (>= curTick()). */
    void schedule(Event &ev, Tick when);

    /** Schedule @p ev at curTick() + @p delay. */
    void scheduleAfter(Event &ev, Tick delay)
    {
        schedule(ev, _curTick + delay);
    }

    /** Remove a scheduled event. */
    void deschedule(Event &ev) { _queue.deschedule(ev); }

    /**
     * Move a scheduled (or unscheduled) event to @p when. A no-op
     * when the event is already scheduled for exactly @p when (the
     * event keeps its FIFO position).
     */
    void reschedule(Event &ev, Tick when);

    /** Whether any events remain. */
    bool hasPendingEvents() const { return !_queue.empty(); }

    /** Tick of the next pending event. @pre hasPendingEvents(). */
    Tick nextEventTick() { return _queue.nextTick(); }

    /**
     * Run until the event queue drains or stop() is called.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Run until simulated time would exceed @p limit. Events at
     * exactly @p limit still execute -- including events they
     * schedule for that same tick, in (priority, FIFO) order -- so
     * the limit is inclusive. The clock is left at @p limit, unless
     * stop() cut the run short, in which case it stays at the last
     * processed event's tick.
     */
    Tick runUntil(Tick limit);

    /**
     * Process every event strictly before @p bound and return. The
     * workhorse of the conservative parallel kernel (src/sim/pdes):
     * one call executes one synchronization window [floor, bound).
     * Unlike runUntil(), the upper edge is exclusive and the clock is
     * left at the last processed event's tick -- never advanced to
     * @p bound -- so events delivered into [bound, ...) by a later
     * mailbox drain are still in this simulator's future. Unlike
     * run(), events are popped while the queue is nonempty even if
     * only background events remain below the bound: a partition must
     * not stall its periodic machinery just because its foreground
     * work momentarily lives in another partition's window.
     */
    Tick runBefore(Tick bound);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { _stopRequested = true; }

    /** Direct access to the queue (tests and advanced harnesses). */
    EventQueue &eventQueue() { return _queue; }
    const EventQueue &eventQueue() const { return _queue; }

    /**
     * Install (or clear, with nullptr) the timeline tracer. The
     * kernel itself never dereferences it -- the pointer only rides
     * here so instrumented components can reach the tracer through
     * the Simulator they already hold. Not owned.
     */
    void setTracer(TraceManager *tracer) { _tracer = tracer; }

    /** Installed tracer, or nullptr when tracing is off. */
    TraceManager *tracer() const { return _tracer; }

    /**
     * Install (or clear, with nullptr) the shared governor timer
     * wheel. Like the tracer, the kernel never dereferences it: the
     * pointer rides here so entities (core pools, ports, line cards)
     * can discover whether they should arm wheel timers instead of
     * per-entity events. Not owned. Install before building the
     * plant -- entities latch their timer mode at arm time, so
     * swapping mid-run mixes disciplines.
     */
    void setTimerWheel(TimerWheel *wheel) { _timerWheel = wheel; }

    /** Installed timer wheel, or nullptr for per-entity events. */
    TimerWheel *timerWheel() const { return _timerWheel; }

    /**
     * Install (or clear) the kernel profiling probe. Not owned.
     * Observed at the next run()/runUntil() entry: installing or
     * clearing a probe from inside a running event takes effect only
     * once the current run loop returns.
     */
    void setProbe(KernelProbe *probe) { _probe = probe; }

    /** Installed probe, or nullptr when profiling is off. */
    KernelProbe *probe() const { return _probe; }

    /** @name Watchdog limits (campaign crash tolerance)
     * Both are cooperative cancellation points checked inside the run
     * loops; when one trips, the loop throws SimInterrupted with the
     * queue and clock untouched, so the run can be retried or its
     * partial statistics flushed.
     */
    ///@{
    /**
     * Install (or clear, with nullptr) an external interrupt flag
     * (not owned; typically set by a watchdog thread or a signal
     * handler). Polled every 1024 processed events.
     */
    void
    setInterruptFlag(const std::atomic<bool> *flag)
    {
        _interrupt = flag;
        _limits = _interrupt != nullptr || _eventBudget != 0;
    }

    /**
     * Cap the total number of processed events (0 = unlimited). A
     * run crossing the cap throws SimInterrupted -- the
     * simulated-event half of the replica watchdog, catching sims
     * that livelock without advancing wall-clock-observable state.
     */
    void
    setEventBudget(std::uint64_t max_events)
    {
        _eventBudget = max_events;
        _limits = _interrupt != nullptr || _eventBudget != 0;
    }

    std::uint64_t eventBudget() const { return _eventBudget; }
    ///@}

    /**
     * Record the experiment root seed for post-mortems. Purely
     * informational: abortDump() prints it so a crashing replica can
     * be reproduced stand-alone.
     */
    void setExperimentSeed(std::uint64_t seed) { _seed = seed; }

    /** @name Abort-dump context contributors
     * Subsystems that hold state a post-mortem should name (the fault
     * manager's injected schedule, a harness's campaign cell) register
     * a labeled writer here; abortDump() invokes each one after the
     * kernel's own summary. Contributors must deregister before they
     * are destroyed. Writers must be read-only: they run mid-abort on
     * a simulator whose model state may be inconsistent.
     */
    ///@{
    void
    addAbortContext(const std::string &name,
                    std::function<void(std::ostream &)> fn)
    {
        _abortContexts.emplace_back(name, std::move(fn));
    }

    void
    removeAbortContext(const std::string &name)
    {
        for (auto it = _abortContexts.begin();
             it != _abortContexts.end(); ++it) {
            if (it->first == name) {
                _abortContexts.erase(it);
                return;
            }
        }
    }
    ///@}

    /**
     * Structured post-mortem: reason, clock, event counters, queue
     * summary (backend, occupancy, spill counters), every registered
     * abort context, the probe's recent-event ring (when one is
     * installed) and the experiment seed. Written on internal aborts
     * before SimAbortError is thrown; harnesses may also call it
     * directly.
     */
    void abortDump(std::ostream &os, const std::string &reason) const;

  private:
    /** Pop the next event and process it (shared run-loop body). */
    template <bool WithProbe> void processOne();
    template <bool WithProbe> void processPopped(Event &ev);
    template <bool WithProbe> Tick runLoop();
    template <bool WithProbe> Tick runUntilLoop(Tick limit);
    template <bool WithProbe> Tick runBeforeLoop(Tick bound);

    /** Throw SimInterrupted when a watchdog limit has tripped. */
    void checkLimits() const;

    /** abortDump + throw SimAbortError (internal inconsistency). */
    [[noreturn]] void abortSim(const std::string &reason) const;

    EventQueue _queue;
    Tick _curTick = 0;
    std::uint64_t _eventsProcessed = 0;
    bool _stopRequested = false;
    TraceManager *_tracer = nullptr;
    TimerWheel *_timerWheel = nullptr;
    KernelProbe *_probe = nullptr;
    /** Fast guard for the per-event limit checks. */
    bool _limits = false;
    const std::atomic<bool> *_interrupt = nullptr;
    std::uint64_t _eventBudget = 0;
    std::uint64_t _seed = 0;
    std::vector<std::pair<std::string,
                          std::function<void(std::ostream &)>>>
        _abortContexts;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_SIMULATOR_HH
