/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns the event queue and the simulated clock. Model
 * components keep a reference to their Simulator and schedule events
 * against it. One Simulator per experiment; no global state, so tests
 * and parameter sweeps can run many simulations in one process.
 */

#ifndef HOLDCSIM_SIM_SIMULATOR_HH
#define HOLDCSIM_SIM_SIMULATOR_HH

#include <cstdint>

#include "event_queue.hh"
#include "types.hh"

namespace holdcsim {

/** Event-driven simulation engine with a nanosecond clock. */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Number of events processed so far (engine throughput metric). */
    std::uint64_t eventsProcessed() const { return _eventsProcessed; }

    /** Schedule @p ev at absolute tick @p when (>= curTick()). */
    void schedule(Event &ev, Tick when);

    /** Schedule @p ev at curTick() + @p delay. */
    void scheduleAfter(Event &ev, Tick delay)
    {
        schedule(ev, _curTick + delay);
    }

    /** Remove a scheduled event. */
    void deschedule(Event &ev) { _queue.deschedule(ev); }

    /** Move a scheduled (or unscheduled) event to @p when. */
    void reschedule(Event &ev, Tick when);

    /** Whether any events remain. */
    bool hasPendingEvents() const { return !_queue.empty(); }

    /** Tick of the next pending event. @pre hasPendingEvents(). */
    Tick nextEventTick() { return _queue.nextTick(); }

    /**
     * Run until the event queue drains or stop() is called.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Run until simulated time would exceed @p limit; events at
     * exactly @p limit still execute. The clock is left at
     * min(limit, last event tick).
     */
    Tick runUntil(Tick limit);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { _stopRequested = true; }

    /** Direct access to the queue (tests and advanced harnesses). */
    EventQueue &eventQueue() { return _queue; }

  private:
    EventQueue _queue;
    Tick _curTick = 0;
    std::uint64_t _eventsProcessed = 0;
    bool _stopRequested = false;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_SIMULATOR_HH
