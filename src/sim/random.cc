#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace holdcsim {

namespace {

/** splitmix64 step: seeds the xoshiro state from any 64-bit value. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** FNV-1a hash, for deriving stream ids from component names. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix seed and stream so that streams 0,1,2,... of the same seed
    // are statistically independent.
    std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 1);
    for (auto &word : _state)
        word = splitmix64(x);
}

Rng::Rng(std::uint64_t seed, const std::string &stream_name)
    : Rng(seed, hashName(stream_name))
{}

std::uint64_t
Rng::next()
{
    // xoshiro256++
    const std::uint64_t result = rotl(_state[0] + _state[3], 23) + _state[0];
    const std::uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        HOLDCSIM_PANIC("uniformInt with lo > hi");
    std::uint64_t span = hi - lo + 1;
    if (span == 0)  // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias: reject the low
    // 2^64 mod span values so exactly floor(2^64 / span) * span
    // values survive. min is 0 when span divides 2^64 (power-of-two
    // spans), in which case every draw is accepted.
    std::uint64_t min = -span % span;
    std::uint64_t v;
    do {
        v = next();
    } while (v < min);
    return lo + v % span;
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        HOLDCSIM_PANIC("exponential with non-positive mean ", mean);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (_haveSpare) {
        _haveSpare = false;
        return _spare;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    _spare = r * std::sin(theta);
    _haveSpare = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::boundedPareto(double alpha, double lo, double hi)
{
    if (!(lo > 0.0) || !(hi > lo) || !(alpha > 0.0))
        HOLDCSIM_PANIC("boundedPareto with invalid parameters");
    double u = uniform();
    double la = std::pow(lo, alpha);
    double ha = std::pow(hi, alpha);
    // Inverse CDF of the bounded Pareto distribution.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double
Rng::weibull(double shape, double scale)
{
    if (!(shape > 0.0) || !(scale > 0.0))
        HOLDCSIM_PANIC("weibull with non-positive parameters");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    // Inverse CDF: scale * (-ln U)^(1/shape).
    return scale * std::pow(-std::log(u), 1.0 / shape);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            HOLDCSIM_PANIC("weightedIndex with negative weight");
        total += w;
    }
    if (total <= 0.0)
        HOLDCSIM_PANIC("weightedIndex with no positive weight");
    double target = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    // Floating-point accumulation can leave target >= acc after the
    // loop; never land on a zero-weight trailing index then.
    std::size_t i = weights.size();
    while (i-- > 0) {
        if (weights[i] > 0.0)
            return i;
    }
    return 0; // unreachable: some weight is positive
}

} // namespace holdcsim
