/**
 * @file
 * Pending-event queue: a two-level calendar/heap structure ordered by
 * (tick, priority, schedule sequence) so simultaneous events run in
 * deterministic FIFO order.
 *
 * Near-future events -- the tx-done, C-state demotion, LPI-wakeup and
 * queue-poll timers that dominate every workload -- land in a ring of
 * calendar buckets covering a sliding window around the current tick,
 * giving O(1) amortized schedule/pop. Far-future events (MTTF faults,
 * experiment-end, background heartbeats) spill into an indexed binary
 * min-heap and migrate into the calendar lazily when the window
 * reaches them. Bucket width recalibrates itself from the observed
 * inter-pop gap so the window tracks each workload's event density.
 *
 * Every scheduled event carries its own (bucket, slot) location, so
 * deschedule() removes the entry eagerly in O(1) from a bucket or
 * O(log n) from the heap; no stale entry can ever outlive (and dangle
 * behind) its event object.
 *
 * The pure binary-heap backend is kept selectable so tests and the
 * bench_event_kernel microbenchmark can replay identical traces
 * through both structures and assert identical pop order; ordering is
 * defined solely by the (tick, priority, sequence) key, so the two
 * backends are observationally equivalent by construction.
 */

#ifndef HOLDCSIM_SIM_EVENT_QUEUE_HH
#define HOLDCSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "event.hh"
#include "types.hh"

namespace holdcsim {

/** Priority queue of scheduled events. */
class EventQueue
{
  public:
    /** Queue implementation (observable behavior is identical). */
    enum class Backend {
        /** Calendar ring + overflow heap (default). */
        calendar,
        /** Single indexed binary heap (reference backend). */
        binaryHeap,
    };

    /** Occupancy / spill counters, exported as profile.queue.*. */
    struct Counters {
        std::uint64_t schedules = 0;
        /** Schedules landing in a calendar bucket (fast path). */
        std::uint64_t bucketSchedules = 0;
        /** Schedules spilling into the overflow heap. */
        std::uint64_t heapSchedules = 0;
        /** Schedules before the window start, clamped to the head
         *  bucket (legal but rare: raw-queue users only). */
        std::uint64_t clampedSchedules = 0;
        std::uint64_t pops = 0;
        std::uint64_t bucketPops = 0;
        std::uint64_t heapPops = 0;
        /** Times the empty calendar re-anchored on the heap minimum. */
        std::uint64_t rebases = 0;
        /** Heap entries migrated into buckets during rebases. */
        std::uint64_t migratedEntries = 0;
        /** Times an oversized head bucket was spilled to the heap. */
        std::uint64_t headSpills = 0;
        /** Bucket entries moved to the heap by head spills. */
        std::uint64_t spilledEntries = 0;
        /** Bucket-geometry changes: width recalibrations and ring
         *  grow/shrink resizes (each rehashes every live entry). */
        std::uint64_t recalibrations = 0;
        /** Largest total occupancy seen. */
        std::size_t peakSize = 0;
    };

    explicit EventQueue(Backend backend = Backend::calendar);
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Insert @p ev to fire at tick @p when.
     * @pre !ev.scheduled(); @pre when >= the last popped tick.
     */
    void schedule(Event &ev, Tick when);

    /** Remove @p ev from the queue. @pre ev.scheduled(). */
    void deschedule(Event &ev);

    /**
     * Move an (optionally scheduled) event to a new tick. A no-op
     * when the event is already scheduled for exactly @p when: the
     * event keeps its FIFO position and the queue is not touched
     * (hot in Port LPI re-arms, which re-ask for the same deadline).
     */
    void reschedule(Event &ev, Tick when);

    /** Whether any events remain. */
    bool empty() const { return size() == 0; }

    /** Number of scheduled events. */
    std::size_t size() const { return _bucketCount + _heap.size(); }

    /** Scheduled events that are not background heartbeats. */
    std::size_t foregroundCount() const
    {
        return size() - _liveBackground;
    }

    /** Tick of the earliest event. @pre !empty(). */
    Tick nextTick() const;

    /**
     * Pop and return the earliest event, marking it unscheduled. The
     * event's when() keeps the tick it fired at.
     * @pre !empty().
     */
    Event &pop();

    /**
     * Pop the earliest event only if it fires strictly before
     * @p bound; return nullptr (queue untouched) otherwise. One
     * findMin() serves both the check and the extraction -- the
     * windowed run loop (src/sim/pdes) would otherwise pay a second
     * head-bucket scan per event via nextTick(). @pre !empty().
     */
    Event *popIfBefore(Tick bound, bool unbounded = false);

    /** Which backend this queue runs on. */
    Backend backend() const { return _backend; }

    /** Current calendar bucket width in ticks (introspection). */
    Tick bucketWidth() const { return Tick{1} << _bucketShift; }

    /** Occupancy / spill counters since construction. */
    const Counters &counters() const { return _counters; }

    /**
     * Exhaustively check the queue's structural invariants: size
     * accounting, entry back-pointers (every scheduled event's
     * (bucket, slot) location must point back at its entry), heap
     * ordering, bucket/window placement and background-event
     * accounting. O(n); meant for the runtime invariant auditor and
     * debug builds, not the hot path.
     *
     * @return empty string when consistent, else a description of
     *         the first violation found.
     */
    std::string auditConsistency() const;

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;
    };

    /** Location of the minimum entry found by findMin(). */
    struct MinRef {
        bool inHeap;
        std::size_t bucket; // physical ring index (buckets only)
        std::size_t slot;   // bucket slot or heap index
    };

    /** Strict ordering: does @p a fire before @p b? */
    static bool earlier(const Entry &a, const Entry &b);

    // Overflow-heap primitives (also the binaryHeap backend).
    void heapPlace(std::size_t idx);
    void heapSiftUp(std::size_t idx);
    void heapSiftDown(std::size_t idx);
    void heapInsert(const Entry &e);
    /** Remove the heap entry at @p idx, restoring the heap property. */
    void heapRemoveAt(std::size_t idx);

    // Calendar primitives.
    void bucketInsert(std::size_t bucket, const Entry &e);
    void bucketRemoveAt(std::size_t bucket, std::size_t slot);
    /** Route @p e to its bucket, the head bucket (clamp) or the heap. */
    void insertEntry(const Entry &e);
    /**
     * Locate the earliest entry, advancing the (mutable) window head
     * over empty buckets. @return false when the queue is empty.
     */
    bool findMin(MinRef &out) const;
    /** Re-anchor the empty calendar on the heap minimum and migrate
     *  every now-in-window heap entry into buckets. @pre heap
     *  nonempty, buckets empty. */
    void rebaseOntoHeap();
    /** Move the head bucket into the overflow heap when it has grown
     *  past the scan threshold, so draining a same-tick burst costs
     *  O(log n) per pop instead of an O(n) bucket scan per pop. */
    void spillOversizedHead();
    /** Feed the pop-gap sampler; rehash when the observed event
     *  density has drifted far from the current bucket width. */
    void observePopGap(Tick popped);
    /** Re-bucket every live entry (buckets AND overflow heap) under a
     *  new bucket width and ring size. */
    void rehash(unsigned new_shift, std::size_t new_bucket_count);

    Backend _backend;

    // Calendar ring. _windowStart is the start tick of the bucket at
    // _head; bucket i (ring distance d from _head) covers ticks
    // [_windowStart + d*width, _windowStart + (d+1)*width). Both are
    // mutable so const peeks can advance the head over empty buckets
    // (pure memoization: observable state is unchanged).
    std::vector<std::vector<Entry>> _buckets;
    std::size_t _bucketMask = 0;
    unsigned _bucketShift = 10; // 1024-tick (~1 us) buckets initially
    mutable std::size_t _head = 0;
    mutable Tick _windowStart = 0;
    std::size_t _bucketCount = 0;

    // Overflow min-heap (the whole queue under Backend::binaryHeap).
    std::vector<Entry> _heap;

    std::size_t _liveBackground = 0;
    std::uint64_t _nextSequence = 0;

    // Bucket-width calibration: mean inter-pop gap over the last
    // window of pops picks the next power-of-two width. Driven only
    // by popped ticks, so it is deterministic across runs.
    Tick _lastPopTick = 0;
    bool _poppedOnce = false;
    double _gapSum = 0.0;
    std::uint64_t _gapCount = 0;

    Counters _counters;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_EVENT_QUEUE_HH
