/**
 * @file
 * Pending-event queue: an indexed binary heap ordered by (tick,
 * priority, schedule sequence) so simultaneous events run in
 * deterministic FIFO order.
 *
 * Every scheduled event carries its own heap slot index, so
 * deschedule() removes the entry eagerly in O(log n); no stale
 * entry can ever outlive (and dangle behind) its event object.
 */

#ifndef HOLDCSIM_SIM_EVENT_QUEUE_HH
#define HOLDCSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "event.hh"
#include "types.hh"

namespace holdcsim {

/** Priority queue of scheduled events. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Insert @p ev to fire at tick @p when.
     * @pre !ev.scheduled(); @pre when >= the last popped tick.
     */
    void schedule(Event &ev, Tick when);

    /** Remove @p ev from the queue. @pre ev.scheduled(). */
    void deschedule(Event &ev);

    /** Move an (optionally scheduled) event to a new tick. */
    void reschedule(Event &ev, Tick when);

    /** Whether any events remain. */
    bool empty() const { return _heap.empty(); }

    /** Number of scheduled events. */
    std::size_t size() const { return _heap.size(); }

    /** Scheduled events that are not background heartbeats. */
    std::size_t foregroundCount() const
    {
        return _heap.size() - _liveBackground;
    }

    /** Tick of the earliest event. @pre !empty(). */
    Tick nextTick() const;

    /**
     * Pop and return the earliest event, marking it unscheduled.
     * @pre !empty().
     */
    Event &pop();

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;
    };

    /** Strict ordering: does @p a fire before @p b? */
    static bool earlier(const Entry &a, const Entry &b);

    /** Record entry @p idx's position inside its event. */
    void place(std::size_t idx);
    void siftUp(std::size_t idx);
    void siftDown(std::size_t idx);
    /** Remove the entry at @p idx, restoring the heap property. */
    void removeAt(std::size_t idx);

    std::vector<Entry> _heap;
    std::size_t _liveBackground = 0;
    std::uint64_t _nextSequence = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_EVENT_QUEUE_HH
