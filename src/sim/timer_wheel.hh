/**
 * @file
 * Shared timer wheel for power-state governor timers.
 *
 * The idle-governor ladder (core C-state demotion, port LPI, line
 * card and switch sleep countdowns) arms one timer per entity. With
 * one Event per timer those governors dominate the event kernel:
 * core.demotion alone is ~43% of all events on the three-tier replay.
 * The TimerWheel coalesces them: deadlines are quantized UP to a
 * bucket boundary (granularity G) and all timers sharing a boundary
 * fire from ONE kernel event, in deterministic arm order.
 *
 * Structure: a fixed ring of S slots each covering one G-tick
 * boundary within the rolling horizon [windowBase, windowBase + S*G),
 * plus an overflow min-heap for deadlines beyond the horizon
 * (migrated into the ring as the window advances -- the same
 * discipline as the calendar event queue's overflow heap). A single
 * "wheel.tick" event rides the simulator at the earliest live
 * boundary; when no timers are live it is descheduled, so the wheel
 * never extends a run() past the last real deadline.
 *
 * Cancellation is O(1) and race-free: handles carry a generation
 * stamp that is bumped whenever an arena entry is freed, so a stale
 * handle (or a slot reference to a reused entry) can never cancel or
 * fire the wrong timer. Callbacks may freely arm/cancel timers while
 * a batch is firing.
 *
 * Semantics vs. per-entity events: a timer armed for now+d fires at
 * ceil((now+d)/G)*G -- never early, at most G-1 ticks late (Linux
 * timer-slack style). With G == 1 the wheel is tick-exact and
 * statistics-identical to the per-event path; coarser G trades
 * bounded governor-transition delay for event coalescing.
 */

#ifndef HOLDCSIM_SIM_TIMER_WHEEL_HH
#define HOLDCSIM_SIM_TIMER_WHEEL_HH

#include <cstdint>
#include <vector>

#include "event.hh"
#include "types.hh"

namespace holdcsim {

class Simulator;

/** Something that owns wheel timers (a pool, a card, a switch). */
class TimerClient
{
  public:
    virtual ~TimerClient() = default;

    /**
     * Timer @p token expired. @p deadline is the quantized tick the
     * timer was set for (== curTick() at the callback). The handle
     * that armed this timer is already dead; re-arming from inside
     * the callback is allowed and yields a fresh handle.
     */
    virtual void timerFired(std::uint64_t token, Tick deadline) = 0;
};

/** Bucketed one-shot timer facility shared by many entities. */
class TimerWheel
{
  public:
    /** Generation-stamped reference to an armed timer. */
    struct Handle {
        static constexpr std::uint32_t invalidIdx = 0xffffffffu;
        std::uint32_t idx = invalidIdx;
        std::uint32_t gen = 0;
        bool valid() const { return idx != invalidIdx; }
    };

    /** Kernel-visible cost counters (dumped as profile.wheel.*). */
    struct Stats {
        std::uint64_t armed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t fired = 0;
        /** Kernel event dispatches ("wheel.tick" count). */
        std::uint64_t tickEvents = 0;
        /** Largest number of timers fired by one tick event. */
        std::uint64_t maxBatch = 0;
        /** Entries moved overflow-heap -> ring as the window slid. */
        std::uint64_t overflowMigrations = 0;
        /** Peak live timers. */
        std::uint64_t maxLive = 0;
    };

    /**
     * @param sim         owning engine (the wheel schedules one event)
     * @param granularity bucket width G in ticks (>= 1; 1 = exact)
     * @param slots       ring size (rounded up to a power of two)
     */
    explicit TimerWheel(Simulator &sim, Tick granularity = 1,
                        std::size_t slots = 1024);
    ~TimerWheel();
    TimerWheel(const TimerWheel &) = delete;
    TimerWheel &operator=(const TimerWheel &) = delete;

    /**
     * Arm a one-shot timer for @p client at curTick() + @p delay,
     * quantized up to the next bucket boundary. @p delay must be
     * finite (callers gate their own maxTick = disabled sentinels).
     */
    Handle arm(TimerClient &client, std::uint64_t token, Tick delay);

    /**
     * Cancel the timer behind @p h. O(1); safe (and a no-op) on
     * invalid, stale or already-fired handles. @p h is reset.
     */
    void cancel(Handle &h);

    /** Whether @p h still refers to a live, unfired timer. */
    bool pending(const Handle &h) const;

    /** Quantized fire tick of a pending handle. @pre pending(h) */
    Tick deadline(const Handle &h) const;

    Tick granularity() const { return _granularity; }
    std::size_t numSlots() const { return _slots.size(); }
    /** Currently armed (live, unfired) timers. */
    std::size_t live() const { return _live; }
    const Stats &stats() const { return _stats; }

  private:
    struct Entry {
        TimerClient *client = nullptr;
        std::uint64_t token = 0;
        /** Global arm order: deterministic intra-batch fire order. */
        std::uint64_t seq = 0;
        Tick deadline = 0;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = Handle::invalidIdx;
        bool live = false;
        bool inOverflow = false;
    };

    /** (idx, gen) pair: detects freed-and-reused arena entries. */
    struct Ref {
        std::uint32_t idx;
        std::uint32_t gen;
    };

    struct Slot {
        std::vector<Ref> ids;
        std::uint32_t liveCount = 0;
    };

    struct OverflowItem {
        Tick deadline;
        std::uint64_t seq;
        std::uint32_t idx;
        std::uint32_t gen;
    };

    Tick quantize(Tick t) const;
    Tick span() const
    {
        return _granularity * static_cast<Tick>(_slots.size());
    }
    Slot &slotFor(Tick deadline)
    {
        return _slots[static_cast<std::size_t>(deadline / _granularity) &
                      (_slots.size() - 1)];
    }
    std::uint32_t allocEntry();
    void freeEntry(std::uint32_t idx);
    /** Keep a min-heap over (deadline, seq): deterministic order. */
    static bool overflowAfter(const OverflowItem &a,
                              const OverflowItem &b);
    void pushOverflow(OverflowItem item);
    void popOverflow();
    /** Drop dead heap tops; migrate items inside the new window. */
    void settleOverflow(Tick window_base);
    /** Kernel event body: fire the current boundary's batch. */
    void tick();
    void scheduleAt(Tick when);

    Simulator &_sim;
    Tick _granularity;
    std::vector<Slot> _slots;
    std::vector<Entry> _arena;
    std::uint32_t _freeHead = Handle::invalidIdx;
    std::vector<OverflowItem> _overflow; // binary heap (by deadline,seq)
    std::size_t _live = 0;
    std::uint64_t _nextSeq = 0;
    /** Boundaries < _windowBase have fired; ring covers
     *  [_windowBase, _windowBase + span()). */
    Tick _windowBase = 0;
    Tick _scheduledAt = maxTick;
    EventFunctionWrapper _tickEvent;
    /** Scratch for the firing batch (reused across ticks). */
    std::vector<Ref> _batch;
    Stats _stats;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_TIMER_WHEEL_HH
