/**
 * @file
 * Statistics primitives used throughout the simulator.
 *
 * All statistics are plain value types owned by the component they
 * describe; StatGroup offers a lightweight registry for pretty
 * dumping. Time-integrating statistics (TimeWeighted, StateResidency)
 * are fed explicit ticks rather than reading a global clock, keeping
 * them testable in isolation.
 */

#ifndef HOLDCSIM_SIM_STATS_HH
#define HOLDCSIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "types.hh"

namespace holdcsim {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Streaming mean / variance / extrema over sample values. */
class Accumulator
{
  public:
    void sample(double v);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const;
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    void reset();

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0; // Welford accumulator
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Exact percentile tracker: stores every sample, sorts on demand.
 * Suited to job-latency distributions at case-study scale (up to a
 * few million samples).
 */
class Percentile
{
  public:
    void sample(double v);

    std::uint64_t count() const { return _samples.size(); }
    double mean() const;
    /** Value at quantile @p q in [0, 1] (linear interpolation). */
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    /** Empirical CDF evaluated at @p x: P[sample <= x]. */
    double cdfAt(double x) const;
    /** All samples, sorted ascending. */
    const std::vector<double> &sorted() const;
    void reset();

  private:
    mutable std::vector<double> _samples;
    mutable bool _sorted = true;
    double _sum = 0.0;
};

/** Fixed-width-bucket histogram over [lo, hi) with overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);

    std::size_t buckets() const { return _counts.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return _counts[i]; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t total() const { return _total; }
    /** Lower edge of bucket @p i. */
    double bucketLo(std::size_t i) const;
    void reset();

  private:
    double _lo, _hi, _width;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

/**
 * Time-weighted average of a piecewise-constant signal (e.g. queue
 * length, power draw). Call set(value, now) on every change, then
 * finish(now) before reading.
 */
class TimeWeighted
{
  public:
    /** Record that the signal takes @p value from tick @p now on. */
    void set(double value, Tick now);

    /** Integrate the final segment up to @p now. */
    void finish(Tick now) { set(_current, now); }

    /** Time-average over [first set, last update]. */
    double average() const;

    /** Integral of the signal over time, in value * seconds. */
    double integral() const { return _integral; }

    double current() const { return _current; }
    void reset();

  private:
    bool _started = false;
    Tick _lastTick = 0;
    Tick _firstTick = 0;
    double _current = 0.0;
    double _integral = 0.0;
};

/**
 * Tracks how long a component resides in each of a set of discrete
 * states, keyed by small integer state ids.
 */
class StateResidency
{
  public:
    /** Record a transition into @p state at tick @p now. */
    void enter(int state, Tick now);

    /** Close the books at tick @p now before reading residencies. */
    void finish(Tick now);

    /** Total ticks spent in @p state so far. */
    Tick residency(int state) const;

    /** Fraction of observed time spent in @p state, in [0, 1]. */
    double fraction(int state) const;

    /** Number of entries into @p state. */
    std::uint64_t transitionsInto(int state) const;

    /** Total observed time. */
    Tick totalTime() const { return _total; }

    int currentState() const { return _current; }
    void reset();

  private:
    /**
     * Every state enum in the simulator is small and dense
     * (CoreCState has 5 states, ServerState 6, PortState 3, ...), so
     * the common case lives in inline arrays: a StateResidency costs
     * ~100 bytes with zero heap allocations, which matters when a
     * 100k-server plant carries one per core, port and card. States
     * outside [0, inlineStates) spill to by-value maps (empty maps
     * allocate nothing, and the type stays copyable).
     */
    static constexpr int inlineStates = 8;

    bool _started = false;
    int _current = -1;
    Tick _lastTick = 0;
    Tick _total = 0;
    std::array<Tick, inlineStates> _residency{};
    std::array<std::uint64_t, inlineStates> _entries{};
    std::map<int, Tick> _residencyOverflow;
    std::map<int, std::uint64_t> _entriesOverflow;

    void accrueCurrent(Tick delta);
};

/**
 * Named registry of scalar statistics for human-readable dumps.
 * Components register name/value pairs at dump time; this avoids any
 * static registration order problems.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    void add(const std::string &key, double value);
    void add(const std::string &key, std::uint64_t value);

    /** Pretty-print "group.key value" lines. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::vector<std::pair<std::string, std::string>> _entries;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_STATS_HH
