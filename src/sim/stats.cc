#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "logging.hh"

namespace holdcsim {

// ---------------------------------------------------------------- Accumulator

void
Accumulator::sample(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += v;
    double delta = v - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (v - _mean);
}

double
Accumulator::mean() const
{
    return _count ? _mean : 0.0;
}

double
Accumulator::variance() const
{
    return _count ? _m2 / static_cast<double>(_count) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::min() const
{
    return _count ? _min : 0.0;
}

double
Accumulator::max() const
{
    return _count ? _max : 0.0;
}

void
Accumulator::reset()
{
    *this = Accumulator{};
}

// ----------------------------------------------------------------- Percentile

void
Percentile::sample(double v)
{
    _samples.push_back(v);
    _sorted = _samples.size() <= 1;
    _sum += v;
}

double
Percentile::mean() const
{
    return _samples.empty() ? 0.0
                            : _sum / static_cast<double>(_samples.size());
}

const std::vector<double> &
Percentile::sorted() const
{
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
    return _samples;
}

double
Percentile::quantile(double q) const
{
    if (_samples.empty())
        return 0.0;
    if (q < 0.0 || q > 1.0)
        HOLDCSIM_PANIC("quantile ", q, " outside [0, 1]");
    const auto &s = sorted();
    if (s.size() == 1)
        return s.front();
    double pos = q * static_cast<double>(s.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= s.size())
        return s.back();
    double frac = pos - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double
Percentile::cdfAt(double x) const
{
    if (_samples.empty())
        return 0.0;
    const auto &s = sorted();
    auto it = std::upper_bound(s.begin(), s.end(), x);
    return static_cast<double>(it - s.begin()) /
           static_cast<double>(s.size());
}

void
Percentile::reset()
{
    _samples.clear();
    _sorted = true;
    _sum = 0.0;
}

// ------------------------------------------------------------------ Histogram

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : _lo(lo), _hi(hi),
      _width((hi - lo) / static_cast<double>(buckets)),
      _counts(buckets, 0)
{
    if (!(hi > lo) || buckets == 0)
        HOLDCSIM_PANIC("histogram with empty range or zero buckets");
}

void
Histogram::sample(double v)
{
    ++_total;
    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _width);
        if (idx >= _counts.size())
            idx = _counts.size() - 1; // guards FP edge at v ~= hi
        ++_counts[idx];
    }
}

double
Histogram::bucketLo(std::size_t i) const
{
    return _lo + _width * static_cast<double>(i);
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _underflow = _overflow = _total = 0;
}

// --------------------------------------------------------------- TimeWeighted

void
TimeWeighted::set(double value, Tick now)
{
    if (!_started) {
        _started = true;
        _firstTick = now;
        _lastTick = now;
        _current = value;
        return;
    }
    if (now < _lastTick)
        HOLDCSIM_PANIC("TimeWeighted fed a tick that moves backwards");
    _integral += _current * toSeconds(now - _lastTick);
    _lastTick = now;
    _current = value;
}

double
TimeWeighted::average() const
{
    if (!_started || _lastTick == _firstTick)
        return _current;
    return _integral / toSeconds(_lastTick - _firstTick);
}

void
TimeWeighted::reset()
{
    *this = TimeWeighted{};
}

// ------------------------------------------------------------- StateResidency

void
StateResidency::accrueCurrent(Tick delta)
{
    if (_current >= 0 && _current < inlineStates)
        _residency[static_cast<std::size_t>(_current)] += delta;
    else
        _residencyOverflow[_current] += delta;
    _total += delta;
}

void
StateResidency::enter(int state, Tick now)
{
    if (_started) {
        if (now < _lastTick)
            HOLDCSIM_PANIC("StateResidency fed a tick that moves backwards");
        accrueCurrent(now - _lastTick);
    }
    _started = true;
    _current = state;
    _lastTick = now;
    if (state >= 0 && state < inlineStates)
        ++_entries[static_cast<std::size_t>(state)];
    else
        ++_entriesOverflow[state];
}

void
StateResidency::finish(Tick now)
{
    if (!_started)
        return;
    if (now < _lastTick)
        HOLDCSIM_PANIC("StateResidency finished with a tick in the past");
    accrueCurrent(now - _lastTick);
    _lastTick = now;
}

Tick
StateResidency::residency(int state) const
{
    if (state >= 0 && state < inlineStates)
        return _residency[static_cast<std::size_t>(state)];
    auto it = _residencyOverflow.find(state);
    return it == _residencyOverflow.end() ? 0 : it->second;
}

double
StateResidency::fraction(int state) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(residency(state)) /
           static_cast<double>(_total);
}

std::uint64_t
StateResidency::transitionsInto(int state) const
{
    if (state >= 0 && state < inlineStates)
        return _entries[static_cast<std::size_t>(state)];
    auto it = _entriesOverflow.find(state);
    return it == _entriesOverflow.end() ? 0 : it->second;
}

void
StateResidency::reset()
{
    *this = StateResidency{};
}

// ------------------------------------------------------------------ StatGroup

void
StatGroup::add(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    _entries.emplace_back(key, os.str());
}

void
StatGroup::add(const std::string &key, std::uint64_t value)
{
    _entries.emplace_back(key, std::to_string(value));
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[key, value] : _entries)
        os << _name << '.' << key << ' ' << value << '\n';
}

} // namespace holdcsim
