#include "simulator.hh"

#include "logging.hh"

namespace holdcsim {

void
Simulator::schedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        HOLDCSIM_PANIC("event '", ev.name(), "' scheduled in the past (",
                       when, " < ", _curTick, ")");
    }
    _queue.schedule(ev, when);
}

void
Simulator::reschedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        HOLDCSIM_PANIC("event '", ev.name(), "' rescheduled in the past (",
                       when, " < ", _curTick, ")");
    }
    _queue.reschedule(ev, when);
}

template <bool WithProbe>
void
Simulator::processOne()
{
    Event &ev = _queue.pop();
    // pop() preserves when(); reading it off the popped event saves a
    // separate nextTick() peek per event.
    _curTick = ev.when();
    ++_eventsProcessed;
    if constexpr (WithProbe) {
        // Queue depth at the pop counts the popped event itself.
        // beginEvent() must copy what it needs: one-shot events
        // delete themselves inside process().
        _probe->beginEvent(ev, _queue.size() + 1);
        ev.process();
        _probe->endEvent();
    } else {
        ev.process();
    }
}

template <bool WithProbe>
Tick
Simulator::runLoop()
{
    while (_queue.foregroundCount() > 0 && !_stopRequested)
        processOne<WithProbe>();
    return _curTick;
}

Tick
Simulator::run()
{
    _stopRequested = false;
    return _probe ? runLoop<true>() : runLoop<false>();
}

template <bool WithProbe>
Tick
Simulator::runUntilLoop(Tick limit)
{
    while (!_queue.empty() && !_stopRequested) {
        if (_queue.nextTick() > limit) {
            _curTick = limit;
            return _curTick;
        }
        processOne<WithProbe>();
    }
    // Queue drained (or stop() was called): advance the clock to the
    // limit only on a full drain -- a stopped run stays at the tick
    // of the last event it actually processed.
    if (!_stopRequested && _curTick < limit)
        _curTick = limit;
    return _curTick;
}

Tick
Simulator::runUntil(Tick limit)
{
    _stopRequested = false;
    return _probe ? runUntilLoop<true>(limit) : runUntilLoop<false>(limit);
}

} // namespace holdcsim
