#include "simulator.hh"

#include <iostream>
#include <ostream>

#include "logging.hh"

namespace holdcsim {

void
Simulator::abortDump(std::ostream &os, const std::string &reason) const
{
    os << "==== simulator abort dump ====\n";
    os << "reason: " << reason << '\n';
    os << "tick: " << _curTick << " (" << toSeconds(_curTick)
       << " s)\n";
    os << "events_processed: " << _eventsProcessed << '\n';
    os << "experiment_seed: " << _seed << '\n';
    if (_eventBudget)
        os << "event_budget: " << _eventBudget << '\n';

    os << "queue.backend: "
       << (_queue.backend() == EventQueue::Backend::calendar
               ? "calendar"
               : "binary_heap")
       << '\n';
    os << "queue.size: " << _queue.size() << '\n';
    os << "queue.foreground: " << _queue.foregroundCount() << '\n';
    if (!_queue.empty())
        os << "queue.next_tick: " << _queue.nextTick() << '\n';
    os << "queue.bucket_width: " << _queue.bucketWidth() << '\n';
    const EventQueue::Counters &c = _queue.counters();
    os << "queue.schedules: " << c.schedules << '\n';
    os << "queue.pops: " << c.pops << '\n';
    os << "queue.rebases: " << c.rebases << '\n';
    os << "queue.recalibrations: " << c.recalibrations << '\n';
    os << "queue.peak_size: " << c.peakSize << '\n';

    for (const auto &[name, fn] : _abortContexts) {
        os << "context." << name << ":\n";
        fn(os);
    }

    if (_probe) {
        os << "recent events (newest last):\n";
        _probe->dumpRecent(os);
    }
    os << "==== end abort dump ====\n";
    os.flush();
}

void
Simulator::abortSim(const std::string &reason) const
{
    abortDump(std::cerr, reason);
    throw SimAbortError(reason);
}

void
Simulator::checkLimits() const
{
    if (_eventBudget != 0 && _eventsProcessed >= _eventBudget) {
        throw SimInterrupted(detail::format(
            "simulated-event budget exceeded (", _eventBudget,
            " events) at tick ", _curTick));
    }
    // The atomic is polled only every 1024 events: cancellation
    // latency stays in the microseconds while the fast path pays one
    // predictable branch.
    if (_interrupt && (_eventsProcessed & 0x3ffu) == 0 &&
        _interrupt->load(std::memory_order_relaxed)) {
        throw SimInterrupted(detail::format(
            "simulation interrupted at tick ", _curTick, " after ",
            _eventsProcessed, " events"));
    }
}

void
Simulator::schedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        abortSim(detail::format("event '", ev.name(),
                                "' scheduled in the past (", when,
                                " < ", _curTick, ")"));
    }
    _queue.schedule(ev, when);
}

void
Simulator::reschedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        abortSim(detail::format("event '", ev.name(),
                                "' rescheduled in the past (", when,
                                " < ", _curTick, ")"));
    }
    _queue.reschedule(ev, when);
}

template <bool WithProbe>
void
Simulator::processOne()
{
    processPopped<WithProbe>(_queue.pop());
}

template <bool WithProbe>
void
Simulator::processPopped(Event &ev)
{
    // pop() preserves when(); reading it off the popped event saves a
    // separate nextTick() peek per event.
    _curTick = ev.when();
    ++_eventsProcessed;
    if constexpr (WithProbe) {
        // Queue depth at the pop counts the popped event itself.
        // beginEvent() must copy what it needs: one-shot events
        // delete themselves inside process().
        _probe->beginEvent(ev, _queue.size() + 1);
        try {
            ev.process();
        } catch (...) {
            // Keep begin/end pairing even when the event throws
            // (invariant violations, watchdog cancellations), so the
            // probe's state stays valid for the abort dump.
            _probe->endEvent();
            throw;
        }
        _probe->endEvent();
    } else {
        ev.process();
    }
}

template <bool WithProbe>
Tick
Simulator::runLoop()
{
    while (_queue.foregroundCount() > 0 && !_stopRequested) {
        if (_limits)
            checkLimits();
        processOne<WithProbe>();
    }
    return _curTick;
}

Tick
Simulator::run()
{
    _stopRequested = false;
    return _probe ? runLoop<true>() : runLoop<false>();
}

template <bool WithProbe>
Tick
Simulator::runUntilLoop(Tick limit)
{
    while (!_queue.empty() && !_stopRequested) {
        if (_limits)
            checkLimits();
        if (_queue.nextTick() > limit) {
            _curTick = limit;
            return _curTick;
        }
        processOne<WithProbe>();
    }
    // Queue drained (or stop() was called): advance the clock to the
    // limit only on a full drain -- a stopped run stays at the tick
    // of the last event it actually processed.
    if (!_stopRequested && _curTick < limit)
        _curTick = limit;
    return _curTick;
}

Tick
Simulator::runUntil(Tick limit)
{
    _stopRequested = false;
    return _probe ? runUntilLoop<true>(limit) : runUntilLoop<false>(limit);
}

template <bool WithProbe>
Tick
Simulator::runBeforeLoop(Tick bound)
{
    while (!_queue.empty() && !_stopRequested) {
        if (_limits)
            checkLimits();
        Event *ev = _queue.popIfBefore(bound);
        if (!ev)
            break;
        processPopped<WithProbe>(*ev);
    }
    return _curTick;
}

Tick
Simulator::runBefore(Tick bound)
{
    _stopRequested = false;
    return _probe ? runBeforeLoop<true>(bound)
                  : runBeforeLoop<false>(bound);
}

} // namespace holdcsim
