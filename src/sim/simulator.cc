#include "simulator.hh"

#include "logging.hh"

namespace holdcsim {

void
Simulator::schedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        HOLDCSIM_PANIC("event '", ev.name(), "' scheduled in the past (",
                       when, " < ", _curTick, ")");
    }
    _queue.schedule(ev, when);
}

void
Simulator::reschedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        HOLDCSIM_PANIC("event '", ev.name(), "' rescheduled in the past (",
                       when, " < ", _curTick, ")");
    }
    _queue.reschedule(ev, when);
}

Tick
Simulator::run()
{
    _stopRequested = false;
    while (_queue.foregroundCount() > 0 && !_stopRequested) {
        Tick next = _queue.nextTick();
        Event &ev = _queue.pop();
        _curTick = next;
        ++_eventsProcessed;
        ev.process();
    }
    return _curTick;
}

Tick
Simulator::runUntil(Tick limit)
{
    _stopRequested = false;
    while (!_queue.empty() && !_stopRequested) {
        Tick next = _queue.nextTick();
        if (next > limit) {
            _curTick = limit;
            return _curTick;
        }
        Event &ev = _queue.pop();
        _curTick = next;
        ++_eventsProcessed;
        ev.process();
    }
    if (_curTick < limit)
        _curTick = limit;
    return _curTick;
}

} // namespace holdcsim
