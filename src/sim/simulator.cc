#include "simulator.hh"

#include "logging.hh"

namespace holdcsim {

void
Simulator::schedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        HOLDCSIM_PANIC("event '", ev.name(), "' scheduled in the past (",
                       when, " < ", _curTick, ")");
    }
    _queue.schedule(ev, when);
}

void
Simulator::reschedule(Event &ev, Tick when)
{
    if (when < _curTick) {
        HOLDCSIM_PANIC("event '", ev.name(), "' rescheduled in the past (",
                       when, " < ", _curTick, ")");
    }
    _queue.reschedule(ev, when);
}

void
Simulator::processOne()
{
    // Queue depth before the pop counts the popped event itself.
    std::size_t queued = _queue.size();
    Tick next = _queue.nextTick();
    Event &ev = _queue.pop();
    _curTick = next;
    ++_eventsProcessed;
    if (_probe) {
        // beginEvent() must copy what it needs: one-shot events
        // delete themselves inside process().
        _probe->beginEvent(ev, queued);
        ev.process();
        _probe->endEvent();
    } else {
        ev.process();
    }
}

Tick
Simulator::run()
{
    _stopRequested = false;
    while (_queue.foregroundCount() > 0 && !_stopRequested)
        processOne();
    return _curTick;
}

Tick
Simulator::runUntil(Tick limit)
{
    _stopRequested = false;
    while (!_queue.empty() && !_stopRequested) {
        if (_queue.nextTick() > limit) {
            _curTick = limit;
            return _curTick;
        }
        processOne();
    }
    if (_curTick < limit)
        _curTick = limit;
    return _curTick;
}

} // namespace holdcsim
