/**
 * @file
 * Conservative (null-message-free) parallel run loop.
 *
 * The WindowScheduler advances N partitions in lock-stepped time
 * windows of width `lookahead`, the minimum latency of any
 * cross-partition link. Within a window [floor, floor + lookahead)
 * every partition executes its local events concurrently on a
 * dedicated pool worker; an interaction that crosses a partition
 * boundary cannot take effect earlier than `lookahead` in the future,
 * so it is recorded as a timestamped outbox message instead of a
 * direct call. At the window barrier a single thread drains every
 * outbox in a deterministic (when, sentAt, src, seq) merge order,
 * injects the messages into their destination queues at
 * Event::mailboxPriority, recomputes the global minimum next event
 * tick (fast-forwarding over idle gaps) and opens the next window.
 * No null messages, no rollback: the window bound itself is the
 * conservative guarantee.
 */

#ifndef HOLDCSIM_SIM_PDES_WINDOW_SCHEDULER_HH
#define HOLDCSIM_SIM_PDES_WINDOW_SCHEDULER_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "sim/types.hh"

#include "partition.hh"

namespace holdcsim::pdes {

/** Barrier-window scheduler driving N partitions in parallel. */
class WindowScheduler
{
  public:
    /** Window-protocol counters and per-worker timing (telemetry;
     *  the timing fields are wall-clock and must stay out of
     *  determinism-checked statistics dumps). */
    struct Stats {
        Tick lookahead = 0;
        /** Barrier phases executed (multi-worker runs only). */
        std::uint64_t windows = 0;
        /** Cross-partition messages delivered. */
        std::uint64_t messages = 0;
        /** Windows whose floor jumped past the previous bound. */
        std::uint64_t fastForwards = 0;
        /** Simulated events, summed over partitions. */
        std::uint64_t eventsProcessed = 0;
        /** Wall seconds each worker spent inside runBefore(). */
        std::vector<double> workerBusySeconds;
        /** Wall seconds each worker spent blocked at the barrier. */
        std::vector<double> workerBlockedSeconds;

        /** Fraction of total worker wall time spent blocked. */
        double blockedFraction() const;
    };

    /**
     * @param partitions one entry per worker; not owned, must stay
     *                   alive for the run. Partition i runs on pool
     *                   worker i.
     * @param lookahead  window width; every Partition::post() latency
     *                   must be >= this or the run aborts at the
     *                   drain.
     */
    WindowScheduler(std::vector<Partition *> partitions, Tick lookahead);

    /**
     * Forward a cooperative interrupt flag to every partition's
     * simulator (same contract as Simulator::setInterruptFlag). A
     * tripped flag surfaces as SimInterrupted from run().
     */
    void setInterruptFlag(const std::atomic<bool> *flag);

    /**
     * Hook invoked single-threaded at every window barrier, before
     * the mailbox drain, with the floor of the window that just
     * executed -- the InvariantAuditor's cross-partition checks run
     * here. A throw (SimAbortError) stops the run and is rethrown
     * from run(). Multi-worker runs only.
     */
    void setBoundaryHook(std::function<void(Tick floor)> hook);

    /**
     * Run every partition to completion (no foreground events left
     * anywhere, all outboxes empty). With one partition this is
     * exactly Simulator::run() -- no threads, no windows -- so
     * `pods:1` matches the sequential kernel event for event. The
     * first exception raised in a partition (lowest partition index
     * wins, deterministically) or at a barrier is rethrown here.
     *
     * @return the maximum final tick over partitions.
     */
    Tick run();

    const Stats &stats() const { return _stats; }

  private:
    void runSingle();
    void runParallel();
    /** Worker w's phase loop (body of the pinned pool task). */
    template <typename Barrier> void workerLoop(std::size_t w, Barrier &sync);
    /** Barrier completion: audit, drain, plan the next window. */
    void drainAndPlan() noexcept;
    /** Rethrow the run's first failure, if any. */
    void propagateErrors();

    std::vector<Partition *> _parts;
    Tick _lookahead;
    std::function<void(Tick)> _boundaryHook;
    const std::atomic<bool> *_interrupt = nullptr;

    // Window state: written only single-threaded (setup or barrier
    // completion while every worker is blocked), read by workers
    // between barriers -- the barrier orders the accesses.
    Tick _floor = 0;
    Tick _bound = 0;
    bool _done = false;
    std::vector<std::exception_ptr> _errors;
    std::exception_ptr _barrierError;

    Stats _stats;
};

} // namespace holdcsim::pdes

#endif // HOLDCSIM_SIM_PDES_WINDOW_SCHEDULER_HH
