#include "window_scheduler.hh"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <tuple>

#include "exp/thread_pool.hh"
#include "sim/logging.hh"

namespace holdcsim::pdes {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

double
WindowScheduler::Stats::blockedFraction() const
{
    double busy = 0.0, blocked = 0.0;
    for (double s : workerBusySeconds)
        busy += s;
    for (double s : workerBlockedSeconds)
        blocked += s;
    const double total = busy + blocked;
    return total > 0.0 ? blocked / total : 0.0;
}

WindowScheduler::WindowScheduler(std::vector<Partition *> partitions,
                                 Tick lookahead)
    : _parts(std::move(partitions)), _lookahead(lookahead)
{
    if (_parts.empty())
        throw std::invalid_argument("WindowScheduler: no partitions");
    if (_parts.size() > 1 && _lookahead == 0) {
        throw std::invalid_argument(
            "WindowScheduler: zero lookahead cannot split partitions "
            "(a zero-latency cross-partition edge admits no window)");
    }
    _errors.resize(_parts.size());
    _stats.lookahead = _lookahead;
    _stats.workerBusySeconds.resize(_parts.size(), 0.0);
    _stats.workerBlockedSeconds.resize(_parts.size(), 0.0);
}

void
WindowScheduler::setInterruptFlag(const std::atomic<bool> *flag)
{
    _interrupt = flag;
    for (Partition *p : _parts)
        p->sim().setInterruptFlag(flag);
}

void
WindowScheduler::setBoundaryHook(std::function<void(Tick)> hook)
{
    _boundaryHook = std::move(hook);
}

Tick
WindowScheduler::run()
{
    if (_parts.size() == 1)
        runSingle();
    else
        runParallel();

    _stats.eventsProcessed = 0;
    Tick final_tick = 0;
    for (Partition *p : _parts) {
        _stats.eventsProcessed += p->sim().eventsProcessed();
        final_tick = std::max(final_tick, p->sim().curTick());
    }
    propagateErrors();
    return final_tick;
}

void
WindowScheduler::runSingle()
{
    // One partition needs no windows and no threads: plain
    // Simulator::run() on the calling thread, which is what makes
    // pods:1 event-for-event identical to the sequential kernel. A
    // model that posts to its own partition anyway (it should route
    // locally) still terminates: drain and resume until quiescent.
    Partition &p = *_parts[0];
    try {
        for (;;) {
            p.sim().run();
            std::vector<Message> &pend = p.outbox().pending();
            if (pend.empty())
                break;
            for (Message &m : pend) {
                p.deliver(m.when, std::move(m.fn));
                ++_stats.messages;
            }
            pend.clear();
        }
    } catch (...) {
        _errors[0] = std::current_exception();
    }
}

void
WindowScheduler::runParallel()
{
    // Plan the first window before any worker starts.
    bool any_fg = false;
    Tick next = maxTick;
    for (Partition *p : _parts) {
        if (p->sim().eventQueue().foregroundCount() > 0)
            any_fg = true;
        if (p->sim().hasPendingEvents())
            next = std::min(next, p->sim().nextEventTick());
    }
    if (!any_fg) {
        _done = true;
        return;
    }
    _floor = next;
    _bound = next >= maxTick - _lookahead ? maxTick : next + _lookahead;

    const std::size_t n = _parts.size();
    std::barrier sync(static_cast<std::ptrdiff_t>(n),
                      [this]() noexcept { drainAndPlan(); });
    // A dedicated pool sized to the partition count: pinned tasks
    // occupy their worker for the whole run, so sharing a smaller
    // pool would deadlock the barrier.
    ThreadPool pool(static_cast<unsigned>(n));
    for (std::size_t w = 0; w < n; ++w)
        pool.submitTo(w, [this, w, &sync] { workerLoop(w, sync); });
    pool.wait();
}

template <typename Barrier>
void
WindowScheduler::workerLoop(std::size_t w, Barrier &sync)
{
    using clock = std::chrono::steady_clock;
    while (!_done) {
        const auto t0 = clock::now();
        try {
            _parts[w]->sim().runBefore(_bound);
        } catch (...) {
            // SimInterrupted (watchdog) or SimAbortError (invariant):
            // record and keep arriving at the barrier -- a missing
            // arrival would deadlock every other worker.
            _errors[w] = std::current_exception();
        }
        const auto t1 = clock::now();
        _stats.workerBusySeconds[w] += secondsSince(t0, t1);
        sync.arrive_and_wait();
        _stats.workerBlockedSeconds[w] += secondsSince(t1, clock::now());
    }
}

void
WindowScheduler::drainAndPlan() noexcept
{
    ++_stats.windows;
    for (const std::exception_ptr &e : _errors) {
        if (e) {
            _done = true;
            return;
        }
    }
    try {
        if (_boundaryHook)
            _boundaryHook(_floor);

        // Drain every outbox into one deterministic batch. The sort
        // key mirrors the sequential kernel's execution order for the
        // same deliveries: tick first, then send time (send order and
        // execution order coincide within a window in the sequential
        // interleaving), then source partition and send sequence as
        // stable tiebreaks.
        std::vector<Message> batch;
        for (Partition *p : _parts) {
            std::vector<Message> &pend = p->outbox().pending();
            batch.insert(batch.end(),
                         std::make_move_iterator(pend.begin()),
                         std::make_move_iterator(pend.end()));
            pend.clear();
        }
        std::sort(batch.begin(), batch.end(),
                  [](const Message &a, const Message &b) {
                      return std::tie(a.when, a.sentAt, a.src, a.seq) <
                             std::tie(b.when, b.sentAt, b.src, b.seq);
                  });
        for (Message &m : batch) {
            if (m.when < _bound) {
                // The destination may already have simulated past
                // m.when: the send's latency undercut the lookahead.
                throw SimAbortError(detail::format(
                    "pdes: mailbox message from partition ", m.src,
                    " to ", m.dst, " lands at ", m.when,
                    " inside the window bound ", _bound,
                    " (latency < lookahead ", _lookahead, ")"));
            }
            _parts[m.dst]->deliver(m.when, std::move(m.fn));
        }
        _stats.messages += batch.size();

        // Done when no partition holds foreground work (outboxes are
        // empty now); otherwise open the next window at the global
        // minimum next event tick, hopping over idle stretches.
        bool any_fg = false;
        Tick next = maxTick;
        for (Partition *p : _parts) {
            if (p->sim().eventQueue().foregroundCount() > 0)
                any_fg = true;
            if (p->sim().hasPendingEvents())
                next = std::min(next, p->sim().nextEventTick());
        }
        if (!any_fg) {
            _done = true;
            return;
        }
        if (next > _bound)
            ++_stats.fastForwards;
        _floor = next;
        _bound =
            next >= maxTick - _lookahead ? maxTick : next + _lookahead;
    } catch (...) {
        _barrierError = std::current_exception();
        _done = true;
    }
}

void
WindowScheduler::propagateErrors()
{
    // Lowest partition index wins so a multi-failure run rethrows the
    // same exception every time.
    for (const std::exception_ptr &e : _errors) {
        if (e)
            std::rethrow_exception(e);
    }
    if (_barrierError)
        std::rethrow_exception(_barrierError);
}

} // namespace holdcsim::pdes
