/**
 * @file
 * Timestamped cross-partition messages for the conservative parallel
 * kernel.
 *
 * During a synchronization window each partition appends messages to
 * its own outbox only -- no locks, because no other thread reads the
 * outbox until the window barrier. At the barrier the WindowScheduler
 * drains every outbox single-threaded, sorts the union by
 * (when, sentAt, srcPartition, seq) and schedules each message's
 * closure into its destination simulator at `when` with
 * Event::mailboxPriority. That total order is exactly the order the
 * sequential kernel would have executed the same deliveries in, which
 * is what makes `--pdes=off` and `--pdes=pods:N` statistically
 * identical (see docs/DESIGN.md, "Conservative parallel kernel").
 */

#ifndef HOLDCSIM_SIM_PDES_MAILBOX_HH
#define HOLDCSIM_SIM_PDES_MAILBOX_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace holdcsim::pdes {

/** One cross-partition interaction, pinned to a delivery tick. */
struct Message {
    /** Delivery tick at the destination (sentAt + link latency). */
    Tick when = 0;
    /** Source partition's clock at send time (merge tiebreak). */
    Tick sentAt = 0;
    /** Destination partition index. */
    std::uint32_t dst = 0;
    /** Source partition index (merge tiebreak). */
    std::uint32_t src = 0;
    /** Per-source send counter (final merge tiebreak = FIFO). */
    std::uint64_t seq = 0;
    /** Runs on the destination partition's worker at tick `when`. */
    std::function<void()> fn;
};

/**
 * A partition's outbox. Single-writer (the owning partition's worker,
 * inside its window) / single-reader (the barrier completion thread,
 * while every worker is blocked) -- the phases never overlap, so no
 * synchronization beyond the barrier itself is needed.
 */
class Mailbox
{
  public:
    /** Append a message; called only from the owning worker. */
    void
    post(std::uint32_t src, std::uint32_t dst, Tick sent_at, Tick when,
         std::function<void()> fn)
    {
        _pending.push_back(
            Message{when, sent_at, dst, src, _nextSeq++, std::move(fn)});
    }

    /** Pending messages; touched only at a window barrier. */
    std::vector<Message> &pending() { return _pending; }

    /** Lifetime total of messages posted (telemetry). */
    std::uint64_t posted() const { return _nextSeq; }

  private:
    std::vector<Message> _pending;
    std::uint64_t _nextSeq = 0;
};

} // namespace holdcsim::pdes

#endif // HOLDCSIM_SIM_PDES_MAILBOX_HH
