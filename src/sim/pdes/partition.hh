/**
 * @file
 * One shard of a partitioned simulation.
 *
 * A Partition adapts an ordinary Simulator (owned by the model, e.g.
 * one per pod group in PodCluster) to the conservative parallel
 * kernel: it carries the partition index, the outbox for
 * cross-partition sends and the pooled delivery events that inject
 * drained messages into the local event queue at mailboxPriority.
 * Model code inside the partition keeps scheduling against the
 * Simulator exactly as in sequential mode; only interactions that
 * cross a partition boundary go through post().
 */

#ifndef HOLDCSIM_SIM_PDES_PARTITION_HH
#define HOLDCSIM_SIM_PDES_PARTITION_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event.hh"
#include "sim/one_shot.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

#include "mailbox.hh"

namespace holdcsim::pdes {

/** Adapter binding one Simulator into a WindowScheduler run. */
class Partition
{
  public:
    /**
     * @param index partition number (stable merge tiebreak)
     * @param sim   the shard's engine; not owned, must outlive this
     */
    Partition(std::uint32_t index, Simulator &sim)
        : _index(index), _sim(sim),
          _delivery(sim, "pdes.deliver[" + std::to_string(index) + "]",
                    Event::mailboxPriority)
    {}

    std::uint32_t index() const { return _index; }
    Simulator &sim() { return _sim; }
    const Simulator &sim() const { return _sim; }

    /**
     * Send a cross-partition interaction: @p fn runs on partition
     * @p dst at curTick() + @p latency. @p latency must be at least
     * the scheduler's lookahead -- the barrier drain aborts the run
     * on a message that would land inside the current window, since
     * that would mean the destination already simulated past the
     * delivery tick. Only call from foreground events of this
     * partition, during a window.
     */
    void
    post(std::uint32_t dst, Tick latency, std::function<void()> fn)
    {
        const Tick now = _sim.curTick();
        _outbox.post(_index, dst, now, now + latency, std::move(fn));
    }

    /** Deliver a drained message (WindowScheduler, barrier phase). */
    void
    deliver(Tick when, std::function<void()> fn)
    {
        _delivery.scheduleAt(when, std::move(fn));
    }

    /** Outbox, drained by the WindowScheduler at window barriers. */
    Mailbox &outbox() { return _outbox; }

  private:
    std::uint32_t _index;
    Simulator &_sim;
    Mailbox _outbox;
    /** Pooled delivery events, all at Event::mailboxPriority. */
    OneShotPool _delivery;
};

} // namespace holdcsim::pdes

#endif // HOLDCSIM_SIM_PDES_PARTITION_HH
