#include "timer_wheel.hh"

#include <algorithm>
#include <utility>

#include "logging.hh"
#include "simulator.hh"

namespace holdcsim {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

TimerWheel::TimerWheel(Simulator &sim, Tick granularity, std::size_t slots)
    : _sim(sim), _granularity(granularity),
      _slots(roundUpPow2(std::max<std::size_t>(slots, 2))),
      _tickEvent([this] { tick(); }, "wheel.tick", Event::powerPriority)
{
    if (granularity == 0)
        fatal("TimerWheel: granularity must be >= 1 tick");
}

TimerWheel::~TimerWheel()
{
    if (_scheduledAt != maxTick)
        _sim.deschedule(_tickEvent);
}

Tick
TimerWheel::quantize(Tick t) const
{
    if (_granularity == 1)
        return t;
    if (t > maxTick - (_granularity - 1))
        return maxTick - maxTick % _granularity; // saturate on a boundary
    return ((t + _granularity - 1) / _granularity) * _granularity;
}

std::uint32_t
TimerWheel::allocEntry()
{
    if (_freeHead != Handle::invalidIdx) {
        std::uint32_t idx = _freeHead;
        _freeHead = _arena[idx].nextFree;
        return idx;
    }
    if (_arena.size() >= Handle::invalidIdx)
        fatal("TimerWheel: arena exhausted (", _arena.size(), " entries)");
    _arena.emplace_back();
    return static_cast<std::uint32_t>(_arena.size() - 1);
}

void
TimerWheel::freeEntry(std::uint32_t idx)
{
    Entry &e = _arena[idx];
    ++e.gen; // invalidates every outstanding Handle/Ref to this entry
    e.live = false;
    e.client = nullptr;
    e.nextFree = _freeHead;
    _freeHead = idx;
}

bool
TimerWheel::overflowAfter(const OverflowItem &a, const OverflowItem &b)
{
    if (a.deadline != b.deadline)
        return a.deadline > b.deadline;
    return a.seq > b.seq;
}

void
TimerWheel::pushOverflow(OverflowItem item)
{
    _overflow.push_back(item);
    std::push_heap(_overflow.begin(), _overflow.end(), overflowAfter);
}

void
TimerWheel::popOverflow()
{
    std::pop_heap(_overflow.begin(), _overflow.end(), overflowAfter);
    _overflow.pop_back();
}

void
TimerWheel::settleOverflow(Tick window_base)
{
    const Tick horizon_end = window_base + span();
    while (!_overflow.empty()) {
        const OverflowItem &top = _overflow.front();
        Entry &e = _arena[top.idx];
        if (e.gen != top.gen || !e.live) {
            popOverflow(); // cancelled (or reused) while parked
            continue;
        }
        if (top.deadline >= horizon_end)
            break;
        Slot &s = slotFor(top.deadline);
        s.ids.push_back({top.idx, top.gen});
        ++s.liveCount;
        e.inOverflow = false;
        ++_stats.overflowMigrations;
        popOverflow();
    }
}

TimerWheel::Handle
TimerWheel::arm(TimerClient &client, std::uint64_t token, Tick delay)
{
    const Tick now = _sim.curTick();
    if (delay > maxTick - now)
        fatal("TimerWheel: deadline overflows Tick (now=", now,
              " delay=", delay, ")");
    const Tick dl = quantize(now + delay);

    // An empty wheel may hold a stale window from long ago; snap it
    // forward so near deadlines land in the ring, not the heap.
    if (_live == 0)
        _windowBase = now - now % _granularity;

    const std::uint32_t idx = allocEntry();
    Entry &e = _arena[idx];
    e.client = &client;
    e.token = token;
    e.seq = _nextSeq++;
    e.deadline = dl;
    e.live = true;

    if (dl < _windowBase + span()) {
        e.inOverflow = false;
        Slot &s = slotFor(dl);
        s.ids.push_back({idx, e.gen});
        ++s.liveCount;
    } else {
        e.inOverflow = true;
        pushOverflow({dl, e.seq, idx, e.gen});
    }

    ++_live;
    ++_stats.armed;
    if (_live > _stats.maxLive)
        _stats.maxLive = _live;

    if (dl < _scheduledAt)
        scheduleAt(dl);
    return {idx, e.gen};
}

void
TimerWheel::cancel(Handle &h)
{
    if (!h.valid()) {
        h = {};
        return;
    }
    Entry &e = _arena[h.idx];
    if (e.gen != h.gen || !e.live) {
        h = {}; // stale: the timer already fired or was re-armed
        return;
    }
    if (!e.inOverflow) {
        Slot &s = slotFor(e.deadline);
        if (--s.liveCount == 0)
            s.ids.clear(); // nothing live left: drop the dead refs too
    }
    // Overflow items are dropped lazily by settleOverflow().
    freeEntry(h.idx);
    --_live;
    ++_stats.cancelled;
    if (_live == 0 && _scheduledAt != maxTick) {
        _sim.deschedule(_tickEvent);
        _scheduledAt = maxTick;
    }
    h = {};
}

bool
TimerWheel::pending(const Handle &h) const
{
    if (!h.valid() || h.idx >= _arena.size())
        return false;
    const Entry &e = _arena[h.idx];
    return e.gen == h.gen && e.live;
}

Tick
TimerWheel::deadline(const Handle &h) const
{
    if (!pending(h))
        fatal("TimerWheel::deadline on a dead handle");
    return _arena[h.idx].deadline;
}

void
TimerWheel::scheduleAt(Tick when)
{
    _sim.reschedule(_tickEvent, when);
    _scheduledAt = when;
}

void
TimerWheel::tick()
{
    const Tick boundary = _sim.curTick();
    _scheduledAt = maxTick;
    ++_stats.tickEvents;

    // Slide the window so it starts at the boundary being fired. All
    // live deadlines are >= boundary (it is the minimum), and ring
    // entries armed under the old window satisfy dl < oldBase + span
    // <= boundary + span, so every ring entry stays inside the new
    // window and the slot-index formula still finds it.
    _windowBase = boundary;
    settleOverflow(boundary);

    // Detach this boundary's batch before firing: callbacks may arm
    // new timers (strictly future after quantization) into the slot.
    Slot &slot = slotFor(boundary);
    _batch.clear();
    _batch.swap(slot.ids);
    slot.liveCount = 0;

    // Fire live entries in arm order (seq) for determinism. Filter
    // first: dead refs keep stale seqs. Free each entry before its
    // callback so the callback can re-arm without tripping pending().
    std::sort(_batch.begin(), _batch.end(),
              [this](const Ref &a, const Ref &b) {
                  return _arena[a.idx].seq < _arena[b.idx].seq;
              });
    std::uint64_t fired = 0;
    for (const Ref &ref : _batch) {
        Entry &e = _arena[ref.idx];
        if (e.gen != ref.gen || !e.live)
            continue; // cancelled, possibly by an earlier callback
        TimerClient *client = e.client;
        const std::uint64_t token = e.token;
        freeEntry(ref.idx);
        --_live;
        ++_stats.fired;
        ++fired;
        client->timerFired(token, boundary);
    }
    if (fired > _stats.maxBatch)
        _stats.maxBatch = fired;
    _batch.clear();

    if (_live == 0)
        return; // stay descheduled; run() may drain and finish

    // Find the next occupied boundary. k = 0 re-checks the current
    // slot: a callback may have armed a zero-delay timer landing on
    // this very boundary, which must fire later this tick, not a lap
    // from now. Then scan the ring forward and fall back to the
    // overflow heap (whose live top is beyond the ring horizon by
    // construction).
    Tick next = maxTick;
    const std::size_t n = _slots.size();
    for (std::size_t k = 0; k <= n; ++k) {
        const Tick b = boundary + _granularity * static_cast<Tick>(k);
        if (_slots[static_cast<std::size_t>(b / _granularity) & (n - 1)]
                .liveCount > 0) {
            next = b;
            break;
        }
    }
    if (next == maxTick) {
        while (!_overflow.empty()) {
            const OverflowItem &top = _overflow.front();
            const Entry &e = _arena[top.idx];
            if (e.gen != top.gen || !e.live) {
                popOverflow();
                continue;
            }
            next = top.deadline;
            break;
        }
    }
    if (next == maxTick)
        fatal("TimerWheel: ", _live, " live timers but no next boundary");
    scheduleAt(next);
}

} // namespace holdcsim
