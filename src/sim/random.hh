/**
 * @file
 * Deterministic random-number streams.
 *
 * Every stochastic model component owns its own Rng, seeded from a
 * (global seed, stream id) pair via splitmix64, so adding or removing
 * one component never perturbs the draws seen by another. The core
 * generator is xoshiro256++ (fast, 2^256-1 period, well tested).
 */

#ifndef HOLDCSIM_SIM_RANDOM_HH
#define HOLDCSIM_SIM_RANDOM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace holdcsim {

/** A seeded random stream with the distributions the models need. */
class Rng
{
  public:
    /** Seed from a global seed and a per-component stream id. */
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

    /** Seed a stream from a global seed and a component name. */
    Rng(std::uint64_t seed, const std::string &stream_name);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Exponential variate with the given mean. @pre mean > 0. */
    double exponential(double mean);

    /** Standard-normal variate (Box-Muller with caching). */
    double normal();

    /** Normal variate with @p mean and @p stddev. */
    double normal(double mean, double stddev);

    /**
     * Bounded-Pareto variate over [lo, hi] with shape @p alpha --
     * the classic heavy-tailed web service-time model.
     * @pre 0 < lo < hi, alpha > 0.
     */
    double boundedPareto(double alpha, double lo, double hi);

    /**
     * Weibull variate with @p shape k and @p scale lambda -- the
     * classic hardware-lifetime model (k < 1: infant mortality,
     * k > 1: wear-out). Mean is scale * Gamma(1 + 1/shape).
     * @pre shape > 0, scale > 0.
     */
    double weibull(double shape, double scale);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /**
     * Draw an index from a discrete distribution given by (possibly
     * unnormalized) non-negative @p weights. @pre at least one weight
     * is positive.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

  private:
    std::uint64_t _state[4];
    bool _haveSpare = false;
    double _spare = 0.0;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_RANDOM_HH
