#include "auditor.hh"

#include <iostream>

#include "logging.hh"

namespace holdcsim {

InvariantAuditor::InvariantAuditor(Simulator &sim, Tick period)
    : _sim(sim), _period(period),
      _event([this] { auditNow(); }, "invariant_audit",
             Event::statsPriority)
{
    if (_period == 0)
        fatal("invariant auditor needs a nonzero period");
    // Audits must never keep a drained simulation alive.
    _event.setBackground(true);
    addCheck("event_queue",
             [this] { return _sim.eventQueue().auditConsistency(); });
}

InvariantAuditor::~InvariantAuditor()
{
    stop();
}

void
InvariantAuditor::addCheck(std::string name, CheckFn fn)
{
    if (!fn)
        fatal("invariant check '", name, "' has no function");
    _checks.emplace_back(std::move(name), std::move(fn));
}

void
InvariantAuditor::addEventQueueCheck(Simulator &other,
                                     const std::string &label)
{
    addCheck(detail::format("event_queue[", label, "]"),
             [&other] { return other.eventQueue().auditConsistency(); });
}

void
InvariantAuditor::start()
{
    _started = true;
    auditNow();
}

void
InvariantAuditor::stop()
{
    _started = false;
    if (_event.scheduled())
        _sim.deschedule(_event);
}

std::string
InvariantAuditor::auditNow()
{
    for (const auto &[name, fn] : _checks) {
        ++_checksRun;
        std::string violation = fn();
        if (violation.empty())
            continue;
        ++_violations;
        if (_hook)
            _hook(name, violation);
        std::string what = detail::format("invariant '", name,
                                          "' violated: ", violation);
        if (_fatal) {
            _sim.abortDump(std::cerr, what);
            throw SimAbortError(what);
        }
        warn(what);
        // Keep auditing: a non-fatal auditor is a monitor.
        if (_started && !_event.scheduled())
            _sim.scheduleAfter(_event, _period);
        return what;
    }
    ++_auditsPassed;
    if (_started && !_event.scheduled())
        _sim.scheduleAfter(_event, _period);
    return {};
}

} // namespace holdcsim
