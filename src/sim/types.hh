/**
 * @file
 * Fundamental simulated-time and physical-unit types for HolDCSim.
 *
 * The simulator counts time in integer nanosecond ticks. Two hours of
 * simulated time is 7.2e12 ticks, leaving ample headroom in a 64-bit
 * counter, while one byte at 1 Gb/s (8 ns) is still exactly
 * representable.
 */

#ifndef HOLDCSIM_SIM_TYPES_HH
#define HOLDCSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace holdcsim {

/** Simulated time, in nanoseconds. */
using Tick = std::uint64_t;

/** A tick value that compares after every schedulable time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** One nanosecond, the base tick. */
constexpr Tick nsec = 1;
/** One microsecond in ticks. */
constexpr Tick usec = 1000 * nsec;
/** One millisecond in ticks. */
constexpr Tick msec = 1000 * usec;
/** One second in ticks. */
constexpr Tick sec = 1000 * msec;

/** Instantaneous power draw, in watts. */
using Watts = double;

/** Accumulated energy, in joules. */
using Joules = double;

/** Data size in bytes (flows can be hundreds of megabytes). */
using Bytes = std::uint64_t;

/** Link/port rate in bits per second. */
using BitsPerSec = double;

/** Convert a tick count to (floating-point) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sec);
}

/** Convert (floating-point) seconds to the nearest tick count. */
constexpr Tick
fromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(sec) + 0.5);
}

/** Energy accumulated by holding @p p watts for @p dt ticks. */
constexpr Joules
energyOver(Watts p, Tick dt)
{
    return p * toSeconds(dt);
}

/**
 * Time needed to serialize @p bytes onto a link running at @p rate
 * bits per second. Returns at least one tick for non-empty payloads so
 * that transmission always advances simulated time.
 */
constexpr Tick
serializationDelay(Bytes bytes, BitsPerSec rate)
{
    if (bytes == 0 || rate <= 0.0)
        return 0;
    double seconds = static_cast<double>(bytes) * 8.0 / rate;
    Tick t = fromSeconds(seconds);
    return t > 0 ? t : 1;
}

} // namespace holdcsim

#endif // HOLDCSIM_SIM_TYPES_HH
