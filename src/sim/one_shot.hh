/**
 * @file
 * Fire-and-forget one-shot events with owner-scoped cleanup.
 *
 * Model code frequently wants "run this lambda once after a delay"
 * without keeping a named Event member alive. A heap-allocated
 * self-deleting event does that, but leaks (and trips ASan) whenever
 * its owner is destroyed while shots are still pending. OneShotPool
 * tracks every in-flight shot so the owner's destructor deschedules
 * and frees the stragglers -- the pattern the fault-injection paths
 * rely on when a crashed component cancels large batches of work.
 */

#ifndef HOLDCSIM_SIM_ONE_SHOT_HH
#define HOLDCSIM_SIM_ONE_SHOT_HH

#include <functional>
#include <string>
#include <unordered_set>

#include "event.hh"
#include "simulator.hh"
#include "types.hh"

namespace holdcsim {

/** Owner of self-cleaning one-shot events against one Simulator. */
class OneShotPool
{
  public:
    /**
     * @param sim  engine the shots are scheduled against
     * @param name event-name prefix for diagnostics
     */
    explicit OneShotPool(Simulator &sim, std::string name = "oneShot");

    /** Deschedules and frees every still-pending shot. */
    ~OneShotPool();

    OneShotPool(const OneShotPool &) = delete;
    OneShotPool &operator=(const OneShotPool &) = delete;

    /** Run @p fn once at curTick() + @p delay. */
    void schedule(Tick delay, std::function<void()> fn);

    /** Shots scheduled but not yet fired. */
    std::size_t pending() const { return _live.size(); }

  private:
    class Shot;

    Simulator &_sim;
    std::string _name;
    std::unordered_set<Shot *> _live;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_ONE_SHOT_HH
