/**
 * @file
 * Fire-and-forget one-shot events with owner-scoped cleanup and a
 * free-list allocator.
 *
 * Model code frequently wants "run this lambda once after a delay"
 * without keeping a named Event member alive. A heap-allocated
 * self-deleting event does that, but leaks (and trips ASan) whenever
 * its owner is destroyed while shots are still pending, and hits the
 * global allocator once per shot -- measurable on the port/core/
 * scheduler fire-and-forget paths. OneShotPool tracks every in-flight
 * shot so the owner's destructor deschedules and frees the
 * stragglers, and recycles fired shots through a free list so steady
 * state allocates nothing.
 */

#ifndef HOLDCSIM_SIM_ONE_SHOT_HH
#define HOLDCSIM_SIM_ONE_SHOT_HH

#include <functional>
#include <string>
#include <vector>

#include "event.hh"
#include "simulator.hh"
#include "types.hh"

namespace holdcsim {

/** Owner of self-cleaning, pooled one-shot events against one
 *  Simulator. */
class OneShotPool
{
  public:
    /**
     * @param sim      engine the shots are scheduled against
     * @param name     event-name prefix for diagnostics
     * @param priority tick-priority every shot of this pool fires at
     *                 (mailbox-delivery pools use mailboxPriority)
     */
    explicit OneShotPool(Simulator &sim, std::string name = "oneShot",
                         int priority = Event::defaultPriority);

    /** Deschedules and frees every still-pending shot. */
    ~OneShotPool();

    OneShotPool(const OneShotPool &) = delete;
    OneShotPool &operator=(const OneShotPool &) = delete;

    /** Run @p fn once at curTick() + @p delay. */
    void schedule(Tick delay, std::function<void()> fn);

    /** Run @p fn once at absolute tick @p when (>= curTick()). */
    void scheduleAt(Tick when, std::function<void()> fn);

    /** Shots scheduled but not yet fired. */
    std::size_t pending() const { return _live.size(); }

    /** Fired shots waiting on the free list for reuse (telemetry). */
    std::size_t freeCount() const { return _free.size(); }

  private:
    class Shot;
    friend class Shot;

    /** Move a fired shot from the live set onto the free list. */
    void recycle(Shot *shot);

    /** Allocate or recycle a shot armed with @p fn. */
    Shot *acquire(std::function<void()> fn);

    Simulator &_sim;
    std::string _name;
    int _priority;
    /** In-flight shots; each shot knows its index (swap-remove). */
    std::vector<Shot *> _live;
    /** Recycled shots ready to be re-armed. */
    std::vector<Shot *> _free;
};

} // namespace holdcsim

#endif // HOLDCSIM_SIM_ONE_SHOT_HH
