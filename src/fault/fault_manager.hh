/**
 * @file
 * Fault injection and availability accounting.
 *
 * The FaultManager owns a FaultModel and drives its episodes into
 * the simulated plant: it crashes and repairs servers, switches,
 * line cards and links at the model's times, routes the damage to
 * the right subsystem (killed tasks to the global scheduler for
 * retry, severed flows and stale routes to the network), and keeps
 * per-component up/down residencies from which availability and
 * downtime statistics are derived.
 *
 * Injection events are background events: a fault schedule extending
 * past the end of the workload never keeps the simulation alive.
 */

#ifndef HOLDCSIM_FAULT_FAULT_MANAGER_HH
#define HOLDCSIM_FAULT_FAULT_MANAGER_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "fault_model.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "telemetry/trace_manager.hh"

namespace holdcsim {

class Server;
class Network;
class GlobalScheduler;

/** Which component classes the manager injects faults into. */
struct FaultManagerConfig {
    bool faultServers = true;
    bool faultSwitches = false;
    bool faultLinecards = false;
    bool faultLinks = false;
};

/** Drives a FaultModel's episodes into servers and the fabric. */
class FaultManager
{
  public:
    /** Up/down bookkeeping for one faultable component. */
    struct ComponentStats {
        FaultTarget target;
        /** Crashes injected so far. */
        std::uint64_t faults = 0;
        /** Residency over {0 = up, 1 = down}. */
        StateResidency residency;
        bool down = false;
    };

    /**
     * @param sim     engine
     * @param model   fault schedule source (owned)
     * @param servers server fleet (server i must have id i)
     * @param net     fabric, may be null (server faults only)
     * @param sched   scheduler notified of kills, may be null
     * @param config  which component classes to fault
     *
     * Enumerates the faultable components per @p config and
     * schedules each one's first episode immediately.
     */
    FaultManager(Simulator &sim, std::unique_ptr<FaultModel> model,
                 std::vector<Server *> servers, Network *net,
                 GlobalScheduler *sched,
                 const FaultManagerConfig &config = {});

    ~FaultManager();
    FaultManager(const FaultManager &) = delete;
    FaultManager &operator=(const FaultManager &) = delete;

    /**
     * Observer of server up/down edges (beyond the scheduler, which
     * is always notified): invoked with the server index and whether
     * it just went down. The orchestration layer uses this to
     * reschedule containers off crashed hosts. Called after the
     * server and scheduler have processed the edge.
     */
    using ServerEventFn = std::function<void(std::size_t, bool down)>;
    void setServerEventHook(ServerEventFn fn)
    {
        _serverEvent = std::move(fn);
    }

    /** @name Realized schedule (repro export, post-mortems) */
    ///@{
    /** One injected episode at its actual fire ticks. */
    struct FiredEpisode {
        FaultTarget target;
        Tick downAt = 0;
        /** maxTick while the component is still down. */
        Tick upAt = maxTick;
    };

    /** Every episode injected so far, in injection order. */
    const std::vector<FiredEpisode> &episodeLog() const
    {
        return _episodeLog;
    }

    /**
     * Write the realized episode sequence as a fault trace that
     * TraceFaultModel::fromFile() (or --replay-schedule) loads, so
     * any run -- stochastic included -- replays deterministically
     * without its original seed. Episodes still open are closed one
     * tick past the current clock.
     */
    void writeScheduleTrace(std::ostream &os) const;
    ///@}

    /** @name Introspection and statistics */
    ///@{
    std::size_t numTargets() const { return _targets.size(); }
    /** Total crash episodes injected so far. */
    std::uint64_t faultsInjected() const { return _faultsInjected; }
    /** Components currently down. */
    std::size_t currentlyDown() const { return _currentlyDown; }

    /** Per-component books (index < numTargets()). */
    const ComponentStats &componentStats(std::size_t i) const
    {
        return _targets.at(i)->stats;
    }

    /**
     * Fraction of measured time component @p i was up. Call
     * finishStats() first for books closed at the current tick.
     */
    double availability(std::size_t i) const;

    /** Mean availability over every managed component. */
    double fleetAvailability() const;

    /** Total down time summed over every component. */
    Tick totalDowntime() const;

    /** Close every residency at the current tick. */
    void finishStats();
    /** Zero residencies and counters (end of warmup). */
    void resetStats();
    ///@}

  private:
    struct TargetState {
        ComponentStats stats;
        /** The episode currently being played (down or pending). */
        FaultRecord pending;
        /** Fires at pending.downAt, then at pending.upAt. */
        EventFunctionWrapper event;
        /** Timeline track, resolved on this target's first fault. */
        TraceTrackId traceTrack = noTraceTrack;
        /** Episode-log slot of the open episode (npos when up). */
        std::size_t openEpisode = static_cast<std::size_t>(-1);

        TargetState(FaultManager &mgr, const FaultTarget &t);
    };

    /** Ask the model for the episode after @p from and arm it. */
    void armNext(TargetState &ts, Tick from);
    /** The armed event fired: crash or repair the component. */
    void onEvent(TargetState &ts);
    void applyDown(TargetState &ts);
    void applyUp(TargetState &ts);
    /** Record @p ts's up/down edge on its fault timeline track. */
    void traceEdge(TargetState &ts, bool down);
    /** Abort-dump contributor: schedule so far + components down. */
    void dumpAbortContext(std::ostream &os) const;

    Simulator &_sim;
    std::unique_ptr<FaultModel> _model;
    std::vector<Server *> _servers;
    Network *_net;
    GlobalScheduler *_sched;

    ServerEventFn _serverEvent;
    std::vector<std::unique_ptr<TargetState>> _targets;
    std::vector<FiredEpisode> _episodeLog;
    std::uint64_t _faultsInjected = 0;
    std::size_t _currentlyDown = 0;
};

} // namespace holdcsim

#endif // HOLDCSIM_FAULT_FAULT_MANAGER_HH
