#include "fault_model.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace holdcsim {

std::string
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::server:   return "server";
      case FaultKind::swtch:    return "switch";
      case FaultKind::link:     return "link";
      case FaultKind::linecard: return "linecard";
    }
    HOLDCSIM_PANIC("unknown FaultKind");
}

std::string
toString(const FaultTarget &target)
{
    std::string s = toString(target.kind) + "." +
                    std::to_string(target.index);
    if (target.kind == FaultKind::linecard)
        s += "." + std::to_string(target.sub);
    return s;
}

std::string
formatFaultTraceLine(const ScheduledFault &fault)
{
    std::ostringstream os;
    os << toString(fault.target.kind) << ' ' << fault.target.index;
    if (fault.target.kind == FaultKind::linecard)
        os << ' ' << fault.target.sub;
    // Nine fractional digits = nanosecond resolution: the decimal is
    // an exact image of the tick count, so parse -> fromSeconds
    // reproduces it bit-for-bit (see fromSeconds' round-to-nearest).
    os << ' ' << std::fixed << std::setprecision(9)
       << toSeconds(fault.record.downAt) << ' '
       << toSeconds(fault.record.upAt);
    return os.str();
}

bool
parseFaultTraceLine(const std::string &line, const std::string &where,
                    ScheduledFault &out)
{
    std::string text = line;
    auto hash = text.find('#');
    if (hash != std::string::npos)
        text.erase(hash);
    std::istringstream ss(text);
    std::string kind_word;
    if (!(ss >> kind_word))
        return false; // blank line
    FaultTarget target;
    if (kind_word == "server") {
        target.kind = FaultKind::server;
    } else if (kind_word == "switch") {
        target.kind = FaultKind::swtch;
    } else if (kind_word == "link") {
        target.kind = FaultKind::link;
    } else if (kind_word == "linecard") {
        target.kind = FaultKind::linecard;
    } else {
        fatal(where, ": unknown fault kind '", kind_word, "'");
    }
    double down_s = 0.0, up_s = 0.0;
    bool ok;
    if (target.kind == FaultKind::linecard) {
        ok = static_cast<bool>(ss >> target.index >> target.sub >>
                               down_s >> up_s);
    } else {
        ok = static_cast<bool>(ss >> target.index >> down_s >> up_s);
    }
    if (!ok)
        fatal(where, ": malformed fault line");
    out.target = target;
    out.record.downAt = fromSeconds(down_s);
    out.record.upAt = fromSeconds(up_s);
    return true;
}

// ----------------------------------------------------------- TraceFaultModel

void
TraceFaultModel::addFault(const FaultTarget &target, Tick down_at,
                          Tick up_at)
{
    if (up_at <= down_at)
        fatal("fault on ", toString(target),
              " repairs before (or as) it breaks");
    _episodes[target].push_back(FaultRecord{down_at, up_at});
    _finalized = false;
}

void
TraceFaultModel::finalize()
{
    for (auto &[target, queue] : _episodes) {
        std::sort(queue.begin(), queue.end(),
                  [](const FaultRecord &a, const FaultRecord &b) {
                      return a.downAt < b.downAt;
                  });
        for (std::size_t i = 1; i < queue.size(); ++i) {
            if (queue[i].downAt < queue[i - 1].upAt)
                fatal("overlapping fault episodes for ",
                      toString(target));
        }
    }
    _finalized = true;
}

std::optional<FaultRecord>
TraceFaultModel::nextFault(const FaultTarget &target, Tick now)
{
    if (!_finalized)
        finalize();
    auto it = _episodes.find(target);
    if (it == _episodes.end())
        return std::nullopt;
    auto &queue = it->second;
    // Skip episodes the caller's clock has already passed (the trace
    // may start before a warmup-reset consumer begins asking).
    while (!queue.empty() && queue.front().upAt <= now)
        queue.pop_front();
    if (queue.empty())
        return std::nullopt;
    FaultRecord rec = queue.front();
    queue.pop_front();
    if (rec.downAt < now)
        rec.downAt = now;
    return rec;
}

std::unique_ptr<TraceFaultModel>
TraceFaultModel::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fault trace '", path, "'");
    auto model = std::make_unique<TraceFaultModel>();
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        ScheduledFault fault;
        if (!parseFaultTraceLine(line,
                                 path + ":" + std::to_string(lineno),
                                 fault)) {
            continue;
        }
        model->addFault(fault.target, fault.record.downAt,
                        fault.record.upAt);
    }
    model->finalize();
    return model;
}

// --------------------------------------------------------- ScheduleFaultModel

ScheduleFaultModel::ScheduleFaultModel(
    std::vector<ScheduledFault> schedule)
{
    for (const ScheduledFault &fault : schedule) {
        if (fault.record.upAt <= fault.record.downAt)
            fatal("scheduled fault on ", toString(fault.target),
                  " repairs before (or as) it breaks");
        _episodes[fault.target].push_back(fault.record);
    }
    for (auto &[target, queue] : _episodes) {
        std::sort(queue.begin(), queue.end(),
                  [](const FaultRecord &a, const FaultRecord &b) {
                      return a.downAt < b.downAt;
                  });
        for (std::size_t i = 1; i < queue.size(); ++i) {
            if (queue[i].downAt < queue[i - 1].upAt)
                fatal("overlapping scheduled faults for ",
                      toString(target));
        }
    }
}

std::optional<FaultRecord>
ScheduleFaultModel::nextFault(const FaultTarget &target, Tick now)
{
    auto it = _episodes.find(target);
    if (it == _episodes.end() || it->second.empty())
        return std::nullopt;
    FaultRecord rec = it->second.front();
    // A schedule is an exact script, not a trace to resynchronize
    // against: an episode the clock has already passed means the
    // harness built an unreplayable schedule.
    if (rec.downAt < now)
        fatal("scheduled fault on ", toString(target), " at tick ",
              rec.downAt, " requested at tick ", now,
              " -- schedule is not replayable");
    it->second.pop_front();
    _consumed.push_back(ScheduledFault{target, rec});
    return rec;
}

// ------------------------------------------------------ StochasticFaultModel

StochasticFaultModel::StochasticFaultModel(std::uint64_t seed,
                                           Tick mttf, Tick mttr,
                                           Distribution dist,
                                           double weibull_shape)
    : _seed(seed), _mttf(mttf), _mttr(mttr), _dist(dist),
      _weibullShape(weibull_shape)
{
    if (mttf == 0 || mttr == 0)
        fatal("stochastic fault model needs positive MTTF and MTTR");
    if (dist == Distribution::weibull && weibull_shape <= 0.0)
        fatal("weibull shape must be positive");
    // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k); invert so the
    // configured MTTF is the distribution's mean regardless of shape.
    _weibullScale =
        dist == Distribution::weibull
            ? static_cast<double>(mttf) /
                  std::tgamma(1.0 + 1.0 / weibull_shape)
            : 0.0;
}

Rng &
StochasticFaultModel::rngFor(const FaultTarget &target)
{
    auto it = _rngs.find(target);
    if (it != _rngs.end())
        return it->second;
    // One named stream per component: draws stay identical when
    // other components are added or removed from the fault set.
    return _rngs.emplace(target, Rng(_seed, "fault." + toString(target)))
        .first->second;
}

std::optional<FaultRecord>
StochasticFaultModel::nextFault(const FaultTarget &target, Tick now)
{
    Rng &rng = rngFor(target);
    double ttf_ticks =
        _dist == Distribution::weibull
            ? rng.weibull(_weibullShape, _weibullScale)
            : rng.exponential(static_cast<double>(_mttf));
    double ttr_ticks = rng.exponential(static_cast<double>(_mttr));
    auto ttf = static_cast<Tick>(std::max(1.0, ttf_ticks));
    auto ttr = static_cast<Tick>(std::max(1.0, ttr_ticks));
    FaultRecord rec;
    rec.downAt = now + ttf;
    rec.upAt = rec.downAt + ttr;
    return rec;
}

} // namespace holdcsim
