/**
 * @file
 * Fault models: when do components break and how long do repairs
 * take.
 *
 * A FaultModel answers one question -- given a component and the time
 * its last repair finished, when does it next go down and when does
 * it come back. Two implementations cover the usual studies:
 * TraceFaultModel replays a deterministic schedule (reproducing a
 * specific incident or a published failure trace), and
 * StochasticFaultModel draws times-to-failure from exponential or
 * Weibull distributions with per-component seeded streams, so runs
 * are reproducible and adding a component never perturbs another's
 * draws.
 */

#ifndef HOLDCSIM_FAULT_FAULT_MODEL_HH
#define HOLDCSIM_FAULT_FAULT_MODEL_HH

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace holdcsim {

/** What kind of component a fault strikes. */
enum class FaultKind {
    /** A whole server crashes. */
    server,
    /** A whole switch dies (every port dark). */
    swtch,
    /** One link is severed. */
    link,
    /** One switch line card dies (its ports' links go down). */
    linecard,
};

std::string toString(FaultKind kind);

/** Identifies one faultable component. */
struct FaultTarget {
    FaultKind kind = FaultKind::server;
    /** Server ordinal, switch ordinal, or link id. */
    std::size_t index = 0;
    /** Line card ordinal within the switch (linecard faults only). */
    unsigned sub = 0;

    bool
    operator<(const FaultTarget &o) const
    {
        return std::tie(kind, index, sub) <
               std::tie(o.kind, o.index, o.sub);
    }
};

std::string toString(const FaultTarget &target);

/** One crash/repair episode. */
struct FaultRecord {
    /** When the component goes down. */
    Tick downAt = 0;
    /** When the repair completes. */
    Tick upAt = 0;
};

/** One explicit episode bound to its target (schedules, exports). */
struct ScheduledFault {
    FaultTarget target;
    FaultRecord record;

    bool
    operator==(const ScheduledFault &o) const
    {
        return !(target < o.target) && !(o.target < target) &&
               record.downAt == o.record.downAt &&
               record.upAt == o.record.upAt;
    }
};

/**
 * Format @p fault as one fault-trace line -- the exact text
 * TraceFaultModel::fromFile() parses. Times are printed as seconds
 * with nanosecond precision, so the round-trip is tick-exact.
 */
std::string formatFaultTraceLine(const ScheduledFault &fault);

/**
 * Parse one fault-trace line into @p out. Returns false for blank or
 * comment-only lines; fatals (prefixing @p where, e.g. "file:12") on
 * malformed ones.
 */
bool parseFaultTraceLine(const std::string &line,
                         const std::string &where, ScheduledFault &out);

/** When does a component next fail, and for how long. */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /**
     * The next fault for @p target, given that it has been healthy
     * since @p now. Returns std::nullopt when @p target never fails
     * again. downAt must be >= @p now and upAt > downAt.
     */
    virtual std::optional<FaultRecord>
    nextFault(const FaultTarget &target, Tick now) = 0;
};

/** Replays a deterministic, explicitly scripted fault schedule. */
class TraceFaultModel : public FaultModel
{
  public:
    /** Append one episode; episodes per target must not overlap. */
    void addFault(const FaultTarget &target, Tick down_at, Tick up_at);

    /**
     * Parse a fault trace file. Each non-comment line is
     *   <kind> <index> <down_s> <up_s>        for server/switch/link
     *   linecard <switch> <card> <down_s> <up_s>
     * with times in seconds from simulation start. '#' starts a
     * comment. Episodes may appear in any order; they are sorted and
     * validated per target.
     */
    static std::unique_ptr<TraceFaultModel>
    fromFile(const std::string &path);

    /** Sort and validate every per-target schedule. */
    void finalize();

    std::optional<FaultRecord> nextFault(const FaultTarget &target,
                                         Tick now) override;

  private:
    std::map<FaultTarget, std::deque<FaultRecord>> _episodes;
    bool _finalized = false;
};

/**
 * Replays an explicit, fully enumerated fault schedule and records
 * every episode it hands out.
 *
 * The model-checking explorer's injection vehicle (src/mc): unlike
 * TraceFaultModel it is built from an in-memory episode list, never
 * clamps or skips past episodes silently -- a schedule that cannot
 * replay exactly as written is a harness bug and fatals -- and keeps
 * the hand-out log from which the realized schedule is exported for
 * repro files.
 */
class ScheduleFaultModel : public FaultModel
{
  public:
    /** @param schedule episodes; per-target overlaps are fatal. */
    explicit ScheduleFaultModel(std::vector<ScheduledFault> schedule);

    std::optional<FaultRecord> nextFault(const FaultTarget &target,
                                         Tick now) override;

    /** Episodes handed out so far, in hand-out order. */
    const std::vector<ScheduledFault> &consumed() const
    {
        return _consumed;
    }

  private:
    std::map<FaultTarget, std::deque<FaultRecord>> _episodes;
    std::vector<ScheduledFault> _consumed;
};

/** Draws failure/repair times from lifetime distributions. */
class StochasticFaultModel : public FaultModel
{
  public:
    /** Time-to-failure distribution family. */
    enum class Distribution {
        /** Memoryless (constant hazard rate). */
        exponential,
        /** Weibull: shape < 1 infant mortality, > 1 wear-out. */
        weibull,
    };

    /**
     * @param seed          global seed; each component derives its
     *                      own named stream from it
     * @param mttf          mean time to failure
     * @param mttr          mean time to repair (exponential)
     * @param dist          time-to-failure distribution
     * @param weibull_shape shape parameter when dist is weibull
     */
    StochasticFaultModel(std::uint64_t seed, Tick mttf, Tick mttr,
                         Distribution dist = Distribution::exponential,
                         double weibull_shape = 1.5);

    std::optional<FaultRecord> nextFault(const FaultTarget &target,
                                         Tick now) override;

  private:
    Rng &rngFor(const FaultTarget &target);

    std::uint64_t _seed;
    Tick _mttf;
    Tick _mttr;
    Distribution _dist;
    double _weibullShape;
    /** Weibull scale chosen so the mean equals the configured MTTF. */
    double _weibullScale;
    std::map<FaultTarget, Rng> _rngs;
};

} // namespace holdcsim

#endif // HOLDCSIM_FAULT_FAULT_MODEL_HH
