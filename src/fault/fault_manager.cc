#include "fault_manager.hh"

#include <ostream>

#include "network/network.hh"
#include "sched/global_scheduler.hh"
#include "server/server.hh"
#include "sim/logging.hh"

namespace holdcsim {

FaultManager::TargetState::TargetState(FaultManager &mgr,
                                       const FaultTarget &t)
    : event([&mgr, this] { mgr.onEvent(*this); },
            "fault." + toString(t))
{
    stats.target = t;
    // Background: a fault schedule reaching past the workload's end
    // must not keep the simulation running.
    event.setBackground(true);
}

FaultManager::FaultManager(Simulator &sim,
                           std::unique_ptr<FaultModel> model,
                           std::vector<Server *> servers, Network *net,
                           GlobalScheduler *sched,
                           const FaultManagerConfig &config)
    : _sim(sim), _model(std::move(model)), _servers(std::move(servers)),
      _net(net), _sched(sched)
{
    if (!_model)
        fatal("fault manager needs a fault model");
    if ((config.faultSwitches || config.faultLinecards ||
         config.faultLinks) &&
        !_net) {
        fatal("network faults requested but no network attached");
    }

    std::vector<FaultTarget> targets;
    if (config.faultServers) {
        for (std::size_t i = 0; i < _servers.size(); ++i)
            targets.push_back({FaultKind::server, i, 0});
    }
    if (config.faultSwitches) {
        for (std::size_t i = 0; i < _net->numSwitches(); ++i)
            targets.push_back({FaultKind::swtch, i, 0});
    }
    if (config.faultLinecards) {
        for (std::size_t i = 0; i < _net->numSwitches(); ++i) {
            std::size_t cards = _net->switchAt(i).numLineCards();
            for (unsigned lc = 0; lc < cards; ++lc)
                targets.push_back({FaultKind::linecard, i, lc});
        }
    }
    if (config.faultLinks) {
        for (std::size_t l = 0; l < _net->topology().numLinks(); ++l)
            targets.push_back({FaultKind::link, l, 0});
    }

    Tick now = _sim.curTick();
    for (const FaultTarget &t : targets) {
        auto ts = std::make_unique<TargetState>(*this, t);
        ts->stats.residency.enter(0, now);
        _targets.push_back(std::move(ts));
        armNext(*_targets.back(), now);
    }

    _sim.addAbortContext("fault_schedule", [this](std::ostream &os) {
        dumpAbortContext(os);
    });
}

FaultManager::~FaultManager()
{
    _sim.removeAbortContext("fault_schedule");
    for (auto &ts : _targets) {
        if (ts->event.scheduled())
            _sim.deschedule(ts->event);
    }
}

void
FaultManager::armNext(TargetState &ts, Tick from)
{
    auto rec = _model->nextFault(ts.stats.target, from);
    if (!rec)
        return; // this component never fails (again)
    if (rec->upAt <= rec->downAt)
        fatal("fault model produced an empty episode for ",
              toString(ts.stats.target));
    ts.pending = *rec;
    Tick at = ts.pending.downAt;
    _sim.schedule(ts.event, at > from ? at : from + 1);
}

void
FaultManager::onEvent(TargetState &ts)
{
    if (!ts.stats.down) {
        applyDown(ts);
        ts.stats.down = true;
        ++ts.stats.faults;
        ++_faultsInjected;
        ++_currentlyDown;
        ts.stats.residency.enter(1, _sim.curTick());
        ts.openEpisode = _episodeLog.size();
        _episodeLog.push_back(
            FiredEpisode{ts.stats.target, _sim.curTick(), maxTick});
        traceEdge(ts, true);
        Tick up = ts.pending.upAt;
        Tick now = _sim.curTick();
        _sim.schedule(ts.event, up > now ? up : now + 1);
        return;
    }
    applyUp(ts);
    ts.stats.down = false;
    --_currentlyDown;
    Tick now = _sim.curTick();
    ts.stats.residency.enter(0, now);
    if (ts.openEpisode != static_cast<std::size_t>(-1)) {
        _episodeLog.at(ts.openEpisode).upAt = now;
        ts.openEpisode = static_cast<std::size_t>(-1);
    }
    traceEdge(ts, false);
    armNext(ts, now);
}

void
FaultManager::writeScheduleTrace(std::ostream &os) const
{
    Tick now = _sim.curTick();
    os << "# realized fault schedule (" << _episodeLog.size()
       << " episodes, exported at tick " << now << ")\n";
    for (const FiredEpisode &ep : _episodeLog) {
        // Still-down components get a synthetic repair just past the
        // clock: the replay injects the same down edge and the repair
        // lands beyond the horizon that mattered.
        Tick up = ep.upAt == maxTick ? now + 1 : ep.upAt;
        ScheduledFault fault{ep.target, FaultRecord{ep.downAt, up}};
        os << formatFaultTraceLine(fault) << '\n';
    }
}

void
FaultManager::dumpAbortContext(std::ostream &os) const
{
    os << "  faults_injected: " << _faultsInjected << '\n';
    os << "  currently_down:";
    if (_currentlyDown == 0) {
        os << " none";
    } else {
        for (const auto &ts : _targets) {
            if (ts->stats.down)
                os << ' ' << toString(ts->stats.target);
        }
    }
    os << '\n';
    os << "  episodes (down_tick up_tick target):\n";
    for (const FiredEpisode &ep : _episodeLog) {
        os << "    " << ep.downAt << ' ';
        if (ep.upAt == maxTick)
            os << "pending";
        else
            os << ep.upAt;
        os << ' ' << toString(ep.target) << '\n';
    }
}

void
FaultManager::traceEdge(TargetState &ts, bool down)
{
    TraceManager *tr = _sim.tracer();
    if (!tr || !tr->wants(TraceCategory::fault))
        return;
    if (ts.traceTrack == noTraceTrack)
        ts.traceTrack = tr->track("faults", toString(ts.stats.target));
    tr->transition(ts.traceTrack, TraceCategory::fault,
                   down ? "down" : "up", _sim.curTick());
}

void
FaultManager::applyDown(TargetState &ts)
{
    const FaultTarget &t = ts.stats.target;
    switch (t.kind) {
      case FaultKind::server: {
        std::vector<TaskRef> killed = _servers.at(t.index)->fail();
        if (_sched)
            _sched->onServerFailed(t.index, killed);
        if (_serverEvent)
            _serverEvent(t.index, true);
        break;
      }
      case FaultKind::swtch:
        _net->failSwitch(t.index);
        break;
      case FaultKind::linecard:
        _net->failLinecard(t.index, t.sub);
        break;
      case FaultKind::link:
        _net->failLink(static_cast<LinkId>(t.index));
        break;
    }
}

void
FaultManager::applyUp(TargetState &ts)
{
    const FaultTarget &t = ts.stats.target;
    switch (t.kind) {
      case FaultKind::server:
        _servers.at(t.index)->repair();
        if (_sched)
            _sched->onServerRepaired(t.index);
        if (_serverEvent)
            _serverEvent(t.index, false);
        break;
      case FaultKind::swtch:
        _net->repairSwitch(t.index);
        break;
      case FaultKind::linecard:
        _net->repairLinecard(t.index, t.sub);
        break;
      case FaultKind::link:
        _net->repairLink(static_cast<LinkId>(t.index));
        break;
    }
}

double
FaultManager::availability(std::size_t i) const
{
    const ComponentStats &cs = _targets.at(i)->stats;
    if (cs.residency.totalTime() == 0)
        return 1.0;
    return cs.residency.fraction(0);
}

double
FaultManager::fleetAvailability() const
{
    if (_targets.empty())
        return 1.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < _targets.size(); ++i)
        sum += availability(i);
    return sum / static_cast<double>(_targets.size());
}

Tick
FaultManager::totalDowntime() const
{
    Tick total = 0;
    for (const auto &ts : _targets)
        total += ts->stats.residency.residency(1);
    return total;
}

void
FaultManager::finishStats()
{
    Tick now = _sim.curTick();
    for (auto &ts : _targets)
        ts->stats.residency.finish(now);
}

void
FaultManager::resetStats()
{
    Tick now = _sim.curTick();
    _episodeLog.clear();
    for (auto &ts : _targets) {
        ts->stats.faults = 0;
        ts->stats.residency.reset();
        ts->stats.residency.enter(ts->stats.down ? 1 : 0, now);
        // A component down across the reset re-opens its episode at
        // the reset tick: the exported schedule stays replayable from
        // the measured interval's start.
        if (ts->stats.down) {
            ts->openEpisode = _episodeLog.size();
            _episodeLog.push_back(
                FiredEpisode{ts->stats.target, now, maxTick});
        } else {
            ts->openEpisode = static_cast<std::size_t>(-1);
        }
    }
    _faultsInjected = 0;
}

} // namespace holdcsim
