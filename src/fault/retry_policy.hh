/**
 * @file
 * Task retry policy (fault subsystem).
 *
 * When a task attempt dies -- its server crashed, a result transfer
 * was severed by a link failure, or a task timeout expired -- the
 * global scheduler consults a RetryPolicy: how many attempts a task
 * gets, how long to back off before re-dispatching (exponential with
 * optional jitter), and how long an attempt may run before it is
 * presumed lost. Header-only so the scheduler can consume it without
 * linking the fault library.
 */

#ifndef HOLDCSIM_FAULT_RETRY_POLICY_HH
#define HOLDCSIM_FAULT_RETRY_POLICY_HH

#include "sim/random.hh"
#include "sim/types.hh"

namespace holdcsim {

/** Retry/backoff parameters for failed task attempts. */
struct RetryPolicy {
    /** Total tries per task (1 = no retries). */
    unsigned maxAttempts = 3;
    /** Backoff before the first retry; doubles every retry after. */
    Tick backoffBase = 10 * msec;
    /** Upper bound on any single backoff interval. */
    Tick backoffMax = 10 * sec;
    /**
     * Uniform jitter applied to each backoff as a fraction of the
     * interval (0.1 = +/-10%), decorrelating retry storms after a
     * correlated failure. Needs an Rng at backoff() time.
     */
    double jitterFrac = 0.1;
    /**
     * An attempt running longer than this is presumed lost and
     * retried (covers dispatch-to-completion). 0 disables timeouts.
     */
    Tick taskTimeout = 0;

    /**
     * Backoff interval after attempt number @p failed_attempt
     * (1-based) failed. @p jitter may be null for the deterministic
     * midpoint.
     */
    Tick
    backoff(unsigned failed_attempt, Rng *jitter = nullptr) const
    {
        if (failed_attempt == 0)
            failed_attempt = 1;
        // Cap the shift so the doubling cannot overflow Tick before
        // the explicit backoffMax clamp applies.
        unsigned shift = failed_attempt - 1;
        Tick interval;
        if (shift >= 63 || backoffBase > (backoffMax >> shift))
            interval = backoffMax;
        else
            interval = backoffBase << shift;
        if (interval > backoffMax)
            interval = backoffMax;
        if (jitter && jitterFrac > 0.0) {
            double f = jitter->uniform(1.0 - jitterFrac,
                                       1.0 + jitterFrac);
            interval = static_cast<Tick>(
                static_cast<double>(interval) * f);
        }
        return interval > 0 ? interval : 1;
    }
};

} // namespace holdcsim

#endif // HOLDCSIM_FAULT_RETRY_POLICY_HH
