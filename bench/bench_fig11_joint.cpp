/**
 * @file
 * Reproduces paper Figure 11 (and exercises the Figure 10 fat-tree
 * topology): server and network power consumption (11a) and the job
 * response-time CDF (11b) under the Server-Network-Aware placement
 * strategy versus the Server-Balanced (load-balancing) baseline.
 *
 * Setup (case study IV-D): fat-tree fabric with full bisection
 * bandwidth, jobs are DAGs of inter-dependent tasks with 100 MB
 * flows per edge, 2000 jobs with Poisson arrivals, flow-based
 * communication, at two server utilization levels.
 *
 * Expected shape: the network-aware policy trims both server and
 * switch power (paper: ~20% / ~18%) with a nearly overlapping
 * latency CDF.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "dc/datacenter.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct JointResult {
    double serverW = 0.0;
    double switchW = 0.0;
    std::vector<double> latencies; // sorted seconds
};

JointResult
runOnce(bool aware, double rho, unsigned n_jobs)
{
    DataCenterConfig cfg;
    cfg.nCores = 4;
    cfg.fabric = DataCenterConfig::Fabric::fatTree;
    cfg.fabricParam = 4; // 16 servers
    cfg.dispatch = aware ? DataCenterConfig::Dispatch::networkAware
                         : DataCenterConfig::Dispatch::roundRobin;
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 2 * sec;
    cfg.netConfig.switchSleepDelay = 1 * sec;
    cfg.taskAntiAffinity = true; // every DAG edge becomes a flow
    cfg.linkRate = 1e10; // 10 GbE: 100 MB transfers in ~80 ms
    cfg.seed = 11;
    DataCenter dc(cfg);

    // Random execution times (paper: "randomly assigned job
    // execution time"); rho is the *server* utilization level, with
    // services sized so the 100 MB flows (~80 ms on 10 GbE) are a
    // comparable but secondary cost.
    const Tick mean_service = 300 * msec;
    auto svc = std::make_shared<ExponentialService>(
        mean_service, dc.makeRng("service"));
    RandomDagGenerator jobs(svc, /*layers=*/3, /*width=*/2,
                            /*edge_probability=*/0.5,
                            /*transfer_bytes=*/100ull << 20,
                            dc.makeRng("dag"));
    // ~4 tasks per job on average.
    double lambda = PoissonArrival::rateForUtilization(
                        rho, 16, 4, toSeconds(mean_service)) /
                    4.0;
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, n_jobs);
    dc.run();
    dc.finishStats();

    JointResult r;
    double seconds = toSeconds(dc.sim().curTick());
    r.serverW = dc.energy().total.total() / seconds;
    r.switchW = dc.switchEnergy() / seconds;
    r.latencies = dc.scheduler().jobLatency().sorted();
    return r;
}

} // namespace

int
main()
{
    setQuiet(true);
    const unsigned n_jobs = 2000;
    std::printf("== Figure 11a: average power, fat-tree k=4, "
                "%u jobs ==\n",
                n_jobs);
    std::printf("rho   policy                 server_W  switch_W\n");
    JointResult keep_balanced, keep_aware;
    for (double rho : {0.3, 0.6}) {
        JointResult balanced = runOnce(false, rho, n_jobs);
        JointResult aware = runOnce(true, rho, n_jobs);
        std::printf("%.1f   server-balanced        %8.1f  %8.1f\n",
                    rho, balanced.serverW, balanced.switchW);
        std::printf("%.1f   server-network-aware   %8.1f  %8.1f\n",
                    rho, aware.serverW, aware.switchW);
        std::printf("%.1f   savings                %7.1f%%  "
                    "%7.1f%%\n",
                    rho,
                    100.0 * (1.0 - aware.serverW / balanced.serverW),
                    100.0 * (1.0 - aware.switchW / balanced.switchW));
        if (rho == 0.3) {
            keep_balanced = std::move(balanced);
            keep_aware = std::move(aware);
        }
    }

    std::printf("\n== Figure 11b: job response-time CDF "
                "(rho=0.3) ==\n");
    std::printf("cdf    balanced_s  aware_s\n");
    auto at = [](const std::vector<double> &v, double q) {
        if (v.empty())
            return 0.0;
        std::size_t idx = static_cast<std::size_t>(q * (v.size() - 1));
        return v[idx];
    };
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
        std::printf("%.2f   %9.3f  %8.3f\n", q,
                    at(keep_balanced.latencies, q),
                    at(keep_aware.latencies, q));
    }
    return 0;
}
