/**
 * @file
 * Acceptance bench for the parallel experiment engine and the dense
 * flow-reshare rewrite.
 *
 * Part 1 runs the same (tau sweep x 8 replica) farm grid twice --
 * sequentially (jobs=1) and on the work-stealing pool (jobs=N) --
 * and REQUIRES every per-replica metric to be bit-identical between
 * the two runs (exit 1 otherwise; CI runs this). The wall-clock
 * ratio of the two runs is the engine speedup.
 *
 * Part 2 replays the same flow-activation churn through the current
 * dense-indexed FlowManager::reshare and through a reference
 * re-implementation of the previous algorithm (per-round std::map
 * lookups for capacity/users/bottleneck membership), and reports
 * microseconds per reshare for both.
 *
 * Usage: bench_engine_parallel [--json=FILE] [--jobs=N]
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common.hh"
#include "exp/experiment.hh"
#include "exp/thread_pool.hh"
#include "network/flow_manager.hh"
#include "network/routing.hh"
#include "network/topology.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ------------------------------------------------- part 1: the engine

const Tick taus[] = {250 * msec, 1000 * msec};
constexpr std::size_t n_replicas = 8;

MetricRow
farmCell(std::size_t point, std::uint64_t seed)
{
    bench::FarmParams p;
    p.nServers = 50;
    p.nCores = 4;
    p.duration = 20 * sec;
    p.tau = taus[point];
    p.seed = seed;
    bench::FarmResult r = bench::runFarm(p);
    return {
        {"energy_j", r.energy},
        {"mean_latency_s", r.meanLatencySec},
        {"p95_s", r.p95Sec},
        {"p99_s", r.p99Sec},
        {"jobs", static_cast<double>(r.jobs)},
        {"sim_seconds", r.simSeconds},
    };
}

/** Bitwise comparison: even sign-of-zero or NaN payloads must agree. */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

bool
recordsIdentical(const std::vector<ReplicaRecord> &a,
                 const std::vector<ReplicaRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].point != b[i].point || a[i].replica != b[i].replica ||
            a[i].seed != b[i].seed ||
            a[i].metrics.size() != b[i].metrics.size())
            return false;
        for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
            if (a[i].metrics[m].first != b[i].metrics[m].first ||
                !sameBits(a[i].metrics[m].second,
                          b[i].metrics[m].second))
                return false;
        }
    }
    return true;
}

// ---------------------------------------- part 2: reshare before/after

/**
 * The pre-rewrite reshare data layout: capacity, user counts and the
 * per-round bottleneck set all live in ordered maps keyed by the
 * directed-link id, so every flow-hop visit pays three tree lookups.
 * Same water-filling algorithm (and same bottleneck-snapshot fix) as
 * the production code -- only the containers differ.
 */
double
mapReshare(const Topology &topo,
           const std::vector<std::vector<std::uint32_t>> &paths,
           std::size_t n_active)
{
    std::map<std::uint32_t, double> cap;
    std::map<std::uint32_t, unsigned> users;
    std::vector<std::size_t> unfrozen;
    for (std::size_t f = 0; f < n_active; ++f) {
        unfrozen.push_back(f);
        for (std::uint32_t dl : paths[f]) {
            auto [it, fresh] = cap.emplace(dl, 0.0);
            if (fresh)
                it->second = topo.link(dl / 2).rate;
            ++users[dl];
        }
    }

    double checksum = 0.0;
    while (!unfrozen.empty()) {
        double best = -1.0;
        for (std::size_t f : unfrozen) {
            for (std::uint32_t dl : paths[f]) {
                double share = cap[dl] / users[dl];
                if (best < 0.0 || share < best)
                    best = share;
            }
        }
        double tol = 1e-9 * std::max(1.0, best);
        std::set<std::uint32_t> bottleneck;
        for (std::size_t f : unfrozen) {
            for (std::uint32_t dl : paths[f]) {
                if (cap[dl] / users[dl] <= best + tol)
                    bottleneck.insert(dl);
            }
        }
        std::vector<std::size_t> next;
        for (std::size_t f : unfrozen) {
            bool frozen = false;
            for (std::uint32_t dl : paths[f]) {
                if (bottleneck.count(dl)) {
                    frozen = true;
                    break;
                }
            }
            if (!frozen) {
                next.push_back(f);
                continue;
            }
            checksum += best;
            for (std::uint32_t dl : paths[f]) {
                cap[dl] = std::max(0.0, cap[dl] - best);
                --users[dl];
            }
        }
        if (next.size() == unfrozen.size())
            break; // no progress; cannot happen with the snapshot fix
        unfrozen.swap(next);
    }
    return checksum;
}

struct ReshareTimings {
    std::size_t flows = 0;
    double dense_us = 0.0;
    double map_us = 0.0;
};

ReshareTimings
reshareChurn(std::size_t n_flows)
{
    auto topo = Topology::fatTree(8, 1e9, 5 * usec);
    StaticRouting routing(topo);

    // The same route set feeds both implementations.
    std::vector<Route> routes;
    for (std::size_t i = 0; i < n_flows; ++i)
        routes.push_back(routing.route(
            topo.serverNode(i % 128),
            topo.serverNode((i * 7 + 3) % 128), i));
    std::vector<std::vector<std::uint32_t>> paths(n_flows);
    for (std::size_t i = 0; i < n_flows; ++i) {
        for (std::size_t h = 0; h < routes[i].links.size(); ++h) {
            LinkId l = routes[i].links[h];
            bool forward = topo.link(l).a == routes[i].nodes[h];
            paths[i].push_back(static_cast<std::uint32_t>(
                l * 2 + (forward ? 1 : 0)));
        }
    }

    ReshareTimings t;
    t.flows = n_flows;

    // Dense path: every activation event triggers one production
    // reshare over the flows admitted so far.
    {
        Simulator sim;
        FlowManager mgr(sim, topo);
        double t0 = now_s();
        for (std::size_t i = 0; i < n_flows; ++i) {
            mgr.startFlow(routes[i], 1'000'000'000'000, [] {});
            sim.runUntil(0);
        }
        t.dense_us = (now_s() - t0) * 1e6 / n_flows;
    }

    // Map-based reference on the identical churn pattern.
    {
        double acc = 0.0;
        double t0 = now_s();
        for (std::size_t i = 1; i <= n_flows; ++i)
            acc += mapReshare(topo, paths, i);
        t.map_us = (now_s() - t0) * 1e6 / n_flows;
        if (acc < 0.0)
            std::printf("%f\n", acc); // keep acc observable
    }
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string json_path;
    unsigned jobs = ThreadPool::defaultWorkers();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--jobs=", 0) == 0)
            jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
    }
    if (jobs == 0)
        jobs = ThreadPool::defaultWorkers();

    const std::size_t points = std::size(taus);
    std::printf("== experiment engine: %zu points x %zu replicas ==\n",
                points, n_replicas);

    auto cell = [](std::size_t point, std::size_t,
                   std::uint64_t seed) {
        return farmCell(point, seed);
    };

    double t0 = now_s();
    auto seq = ExperimentEngine(1).run(points, n_replicas, 1, cell);
    double seq_s = now_s() - t0;

    t0 = now_s();
    auto par = ExperimentEngine(jobs).run(points, n_replicas, 1, cell);
    double par_s = now_s() - t0;

    bool identical = recordsIdentical(seq, par);
    double speedup = seq_s / par_s;
    std::printf("sequential %.2f s, parallel (%u jobs) %.2f s: "
                "%.2fx speedup, stats %s\n",
                seq_s, jobs, par_s, speedup,
                identical ? "bit-identical" : "MISMATCH");

    std::printf("== flow reshare: dense vs map (512-flow churn) ==\n");
    ReshareTimings rt = reshareChurn(512);
    std::printf("dense %.1f us/reshare, map %.1f us/reshare: "
                "%.2fx faster\n",
                rt.dense_us, rt.map_us, rt.map_us / rt.dense_us);

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        os << "{\n"
           << "  \"engine\": {\n"
           << "    \"points\": " << points << ",\n"
           << "    \"replicas\": " << n_replicas << ",\n"
           << "    \"jobs\": " << jobs << ",\n"
           << "    \"sequential_s\": " << seq_s << ",\n"
           << "    \"parallel_s\": " << par_s << ",\n"
           << "    \"speedup\": " << speedup << ",\n"
           << "    \"stats_bit_identical\": "
           << (identical ? "true" : "false") << "\n"
           << "  },\n"
           << "  \"reshare\": {\n"
           << "    \"flows\": " << rt.flows << ",\n"
           << "    \"dense_us_per_reshare\": " << rt.dense_us << ",\n"
           << "    \"map_us_per_reshare\": " << rt.map_us << ",\n"
           << "    \"speedup\": " << rt.map_us / rt.dense_us << "\n"
           << "  }\n"
           << "}\n";
        std::printf("results written to %s\n", json_path.c_str());
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: parallel replica stats differ "
                             "from sequential\n");
        return 1;
    }
    return 0;
}
