/**
 * @file
 * Acceptance bench for the parallel experiment engine and the dense
 * flow-reshare rewrite.
 *
 * Part 1 runs the same (tau sweep x 8 replica) farm grid twice --
 * sequentially (jobs=1) and on the work-stealing pool (jobs=N) --
 * and REQUIRES every per-replica metric to be bit-identical between
 * the two runs (exit 1 otherwise; CI runs this). The wall-clock
 * ratio of the two runs is the engine speedup.
 *
 * Part 2 replays the same flow-activation churn through the current
 * dense-indexed FlowManager::reshare and through a reference
 * re-implementation of the previous algorithm (per-round std::map
 * lookups for capacity/users/bottleneck membership), and reports
 * microseconds per reshare for both.
 *
 * Part 3 is the network-model-tier scaling point: a standing
 * population of rack-local flows (10k / 100k / 1M concurrent) is
 * bulk-loaded on a fat tree, then a churn of abort+start updates is
 * replayed under the exact global solver and under the fluid
 * partial-invalidation solver, reporting microseconds per update for
 * each. Rack-local traffic keeps the fluid model's dirty component
 * at one rack while the exact model re-solves (and reschedules) the
 * whole population, so the gap is the lazy-invalidation win.
 *
 * Usage: bench_engine_parallel [--json=FILE] [--jobs=N]
 *                              [--churn-max=FLOWS] [--churn-only]
 *
 * --churn-only skips parts 1 and 2 (and JSON output) for quick
 * iteration on the model-tier comparison.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common.hh"
#include "exp/experiment.hh"
#include "exp/thread_pool.hh"
#include "network/flow_manager.hh"
#include "network/fluid/net_model.hh"
#include "network/routing.hh"
#include "network/topology.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ------------------------------------------------- part 1: the engine

const Tick taus[] = {250 * msec, 1000 * msec};
constexpr std::size_t n_replicas = 8;

MetricRow
farmCell(std::size_t point, std::uint64_t seed)
{
    bench::FarmParams p;
    p.nServers = 50;
    p.nCores = 4;
    p.duration = 20 * sec;
    p.tau = taus[point];
    p.seed = seed;
    bench::FarmResult r = bench::runFarm(p);
    return {
        {"energy_j", r.energy},
        {"mean_latency_s", r.meanLatencySec},
        {"p95_s", r.p95Sec},
        {"p99_s", r.p99Sec},
        {"jobs", static_cast<double>(r.jobs)},
        {"sim_seconds", r.simSeconds},
    };
}

/** Bitwise comparison: even sign-of-zero or NaN payloads must agree. */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

bool
recordsIdentical(const std::vector<ReplicaRecord> &a,
                 const std::vector<ReplicaRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].point != b[i].point || a[i].replica != b[i].replica ||
            a[i].seed != b[i].seed ||
            a[i].metrics.size() != b[i].metrics.size())
            return false;
        for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
            if (a[i].metrics[m].first != b[i].metrics[m].first ||
                !sameBits(a[i].metrics[m].second,
                          b[i].metrics[m].second))
                return false;
        }
    }
    return true;
}

// ---------------------------------------- part 2: reshare before/after

/**
 * The pre-rewrite reshare data layout: capacity, user counts and the
 * per-round bottleneck set all live in ordered maps keyed by the
 * directed-link id, so every flow-hop visit pays three tree lookups.
 * Same water-filling algorithm (and same bottleneck-snapshot fix) as
 * the production code -- only the containers differ.
 */
double
mapReshare(const Topology &topo,
           const std::vector<std::vector<std::uint32_t>> &paths,
           std::size_t n_active)
{
    std::map<std::uint32_t, double> cap;
    std::map<std::uint32_t, unsigned> users;
    std::vector<std::size_t> unfrozen;
    for (std::size_t f = 0; f < n_active; ++f) {
        unfrozen.push_back(f);
        for (std::uint32_t dl : paths[f]) {
            auto [it, fresh] = cap.emplace(dl, 0.0);
            if (fresh)
                it->second = topo.link(dl / 2).rate;
            ++users[dl];
        }
    }

    double checksum = 0.0;
    while (!unfrozen.empty()) {
        double best = -1.0;
        for (std::size_t f : unfrozen) {
            for (std::uint32_t dl : paths[f]) {
                double share = cap[dl] / users[dl];
                if (best < 0.0 || share < best)
                    best = share;
            }
        }
        double tol = 1e-9 * std::max(1.0, best);
        std::set<std::uint32_t> bottleneck;
        for (std::size_t f : unfrozen) {
            for (std::uint32_t dl : paths[f]) {
                if (cap[dl] / users[dl] <= best + tol)
                    bottleneck.insert(dl);
            }
        }
        std::vector<std::size_t> next;
        for (std::size_t f : unfrozen) {
            bool frozen = false;
            for (std::uint32_t dl : paths[f]) {
                if (bottleneck.count(dl)) {
                    frozen = true;
                    break;
                }
            }
            if (!frozen) {
                next.push_back(f);
                continue;
            }
            checksum += best;
            for (std::uint32_t dl : paths[f]) {
                cap[dl] = std::max(0.0, cap[dl] - best);
                --users[dl];
            }
        }
        if (next.size() == unfrozen.size())
            break; // no progress; cannot happen with the snapshot fix
        unfrozen.swap(next);
    }
    return checksum;
}

struct ReshareTimings {
    std::size_t flows = 0;
    double dense_us = 0.0;
    double map_us = 0.0;
};

ReshareTimings
reshareChurn(std::size_t n_flows)
{
    auto topo = Topology::fatTree(8, 1e9, 5 * usec);
    StaticRouting routing(topo);

    // The same route set feeds both implementations.
    std::vector<Route> routes;
    for (std::size_t i = 0; i < n_flows; ++i)
        routes.push_back(routing.route(
            topo.serverNode(i % 128),
            topo.serverNode((i * 7 + 3) % 128), i));
    std::vector<std::vector<std::uint32_t>> paths(n_flows);
    for (std::size_t i = 0; i < n_flows; ++i) {
        for (std::size_t h = 0; h < routes[i].links.size(); ++h) {
            LinkId l = routes[i].links[h];
            bool forward = topo.link(l).a == routes[i].nodes[h];
            paths[i].push_back(static_cast<std::uint32_t>(
                l * 2 + (forward ? 1 : 0)));
        }
    }

    ReshareTimings t;
    t.flows = n_flows;

    // Dense path: every activation event triggers one production
    // reshare over the flows admitted so far.
    {
        Simulator sim;
        FlowManager mgr(sim, topo);
        double t0 = now_s();
        for (std::size_t i = 0; i < n_flows; ++i) {
            mgr.startFlow(routes[i], 1'000'000'000'000, [] {});
            sim.runUntil(0);
        }
        t.dense_us = (now_s() - t0) * 1e6 / n_flows;
    }

    // Map-based reference on the identical churn pattern.
    {
        double acc = 0.0;
        double t0 = now_s();
        for (std::size_t i = 1; i <= n_flows; ++i)
            acc += mapReshare(topo, paths, i);
        t.map_us = (now_s() - t0) * 1e6 / n_flows;
        if (acc < 0.0)
            std::printf("%f\n", acc); // keep acc observable
    }
    return t;
}

// --------------------------- part 3: flow-churn scaling (model tiers)

struct ChurnPoint {
    std::size_t flows = 0;
    std::size_t racks = 0;
    std::size_t ops = 0;
    double exact_us = 0.0;
    double fluid_us = 0.0;
    std::uint64_t fluid_mean_dirty = 0;
};

/**
 * Rack-local routes on an Al-Fares fat tree of parameter @p k:
 * flow j connects two servers under the same edge switch, cycling
 * through all racks and intra-rack partners. The fluid model's
 * connected component for any one update is therefore a single
 * rack's flow set.
 */
std::vector<Route>
rackLocalRoutes(const Topology &topo, StaticRouting &routing,
                unsigned k, std::size_t n_flows)
{
    const std::size_t per_rack = k / 2;
    const std::size_t n_srv = topo.numServers();
    std::vector<Route> routes;
    routes.reserve(n_flows);
    for (std::size_t j = 0; j < n_flows; ++j) {
        std::size_t src = j % n_srv;
        std::size_t rack_base = src - src % per_rack;
        std::size_t offset =
            1 + (j / n_srv) % (per_rack - 1); // never 0: dst != src
        std::size_t dst =
            rack_base + (src - rack_base + offset) % per_rack;
        routes.push_back(routing.route(topo.serverNode(src),
                                       topo.serverNode(dst), j));
    }
    return routes;
}

/**
 * Bulk-load the standing population, then replay @p ops abort+start
 * updates and return microseconds per update. @p dirty_out receives
 * the backend's mean dirty-set size per resolve during the churn.
 */
double
churnRun(NetModelKind kind, const Topology &topo,
         const std::vector<Route> &routes, std::size_t ops,
         std::uint64_t *dirty_out = nullptr)
{
    Simulator sim;
    NetModelConfig cfg;
    cfg.kind = kind;
    auto model = makeNetModel(sim, topo, cfg);

    constexpr Bytes huge = 1'000'000'000'000'000; // completions far out
    std::vector<FlowId> ids(routes.size());
    double t_load = now_s();
    model->beginBulkLoad();
    for (std::size_t i = 0; i < routes.size(); ++i)
        ids[i] = model->startFlow(routes[i], huge, [] {});
    sim.runUntil(0);
    model->endBulkLoad();
    std::printf("    %s: %zu flows bulk-loaded in %.1f s\n",
                toString(kind), routes.size(), now_s() - t_load);
    std::fflush(stdout);

    NetSolverStats before = model->solverStats();
    double t0 = now_s();
    for (std::size_t op = 0; op < ops; ++op) {
        std::size_t i = op % ids.size();
        model->abortFlow(ids[i]);
        ids[i] = model->startFlow(routes[i], huge, [] {});
        sim.runUntil(sim.curTick());
    }
    double us = (now_s() - t0) * 1e6 / ops;
    std::printf("    %s: %zu updates in %.1f s\n", toString(kind),
                ops, (now_s() - t0));
    std::fflush(stdout);
    if (dirty_out) {
        const NetSolverStats &after = model->solverStats();
        std::uint64_t resolves = after.resolves - before.resolves;
        *dirty_out = resolves == 0
                         ? 0
                         : (after.resolvedFlows -
                            before.resolvedFlows) /
                               resolves;
    }
    return us;
}

ChurnPoint
churnPoint(std::size_t n_flows)
{
    // 1M concurrent flows get the bigger fabric (1024 servers, 128
    // racks); the smaller points use fatTree(8) (128 servers, 32
    // racks).
    const unsigned k = n_flows >= 1'000'000 ? 16 : 8;
    auto topo = Topology::fatTree(k, 1e9, 5 * usec);
    StaticRouting routing(topo);
    auto routes = rackLocalRoutes(topo, routing, k, n_flows);

    ChurnPoint p;
    p.flows = n_flows;
    p.racks = topo.numServers() / (k / 2);
    p.ops = n_flows >= 1'000'000 ? 4 : n_flows >= 100'000 ? 16 : 64;
    p.fluid_us = churnRun(NetModelKind::fluid, topo, routes, p.ops,
                          &p.fluid_mean_dirty);
    p.exact_us = churnRun(NetModelKind::exact, topo, routes, p.ops);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string json_path;
    unsigned jobs = ThreadPool::defaultWorkers();
    std::size_t churn_max = 1'000'000;
    bool churn_only = false; // debug: skip parts 1+2, no JSON
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--jobs=", 0) == 0)
            jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
        else if (arg.rfind("--churn-max=", 0) == 0)
            churn_max = static_cast<std::size_t>(
                std::strtoul(arg.c_str() + 12, nullptr, 10));
        else if (arg == "--churn-only")
            churn_only = true;
    }
    if (jobs == 0)
        jobs = ThreadPool::defaultWorkers();

    const std::size_t points = std::size(taus);
    bool identical = true;
    double seq_s = 0.0, par_s = 0.0, speedup = 0.0;
    ReshareTimings rt;
    if (!churn_only) {
        std::printf(
            "== experiment engine: %zu points x %zu replicas ==\n",
            points, n_replicas);

        auto cell = [](std::size_t point, std::size_t,
                       std::uint64_t seed) {
            return farmCell(point, seed);
        };

        double t0 = now_s();
        auto seq =
            ExperimentEngine(1).run(points, n_replicas, 1, cell);
        seq_s = now_s() - t0;

        t0 = now_s();
        auto par =
            ExperimentEngine(jobs).run(points, n_replicas, 1, cell);
        par_s = now_s() - t0;

        identical = recordsIdentical(seq, par);
        speedup = seq_s / par_s;
        std::printf("sequential %.2f s, parallel (%u jobs) %.2f s: "
                    "%.2fx speedup, stats %s\n",
                    seq_s, jobs, par_s, speedup,
                    identical ? "bit-identical" : "MISMATCH");

        std::printf(
            "== flow reshare: dense vs map (512-flow churn) ==\n");
        rt = reshareChurn(512);
        std::printf("dense %.1f us/reshare, map %.1f us/reshare: "
                    "%.2fx faster\n",
                    rt.dense_us, rt.map_us, rt.map_us / rt.dense_us);
    }

    std::printf("== flow churn: exact vs fluid model tier ==\n");
    std::vector<ChurnPoint> churn;
    for (std::size_t n : {std::size_t{10'000}, std::size_t{100'000},
                          std::size_t{1'000'000}}) {
        if (n > churn_max)
            continue;
        churn.push_back(churnPoint(n));
        const ChurnPoint &p = churn.back();
        std::printf("%8zu flows (%zu racks): exact %.1f us/update, "
                    "fluid %.1f us/update (%.1fx, mean dirty set "
                    "%llu flows)\n",
                    p.flows, p.racks, p.exact_us, p.fluid_us,
                    p.exact_us / p.fluid_us,
                    static_cast<unsigned long long>(
                        p.fluid_mean_dirty));
    }

    if (!json_path.empty() && !churn_only) {
        std::ofstream os(json_path);
        os << "{\n"
           << "  \"engine\": {\n"
           << "    \"points\": " << points << ",\n"
           << "    \"replicas\": " << n_replicas << ",\n"
           << "    \"jobs\": " << jobs << ",\n"
           << "    \"sequential_s\": " << seq_s << ",\n"
           << "    \"parallel_s\": " << par_s << ",\n"
           << "    \"speedup\": " << speedup << ",\n"
           << "    \"stats_bit_identical\": "
           << (identical ? "true" : "false") << "\n"
           << "  },\n"
           << "  \"reshare\": {\n"
           << "    \"flows\": " << rt.flows << ",\n"
           << "    \"dense_us_per_reshare\": " << rt.dense_us << ",\n"
           << "    \"map_us_per_reshare\": " << rt.map_us << ",\n"
           << "    \"speedup\": " << rt.map_us / rt.dense_us << "\n"
           << "  },\n"
           << "  \"flow_churn\": [\n";
        for (std::size_t i = 0; i < churn.size(); ++i) {
            const ChurnPoint &p = churn[i];
            os << "    {\n"
               << "      \"concurrent_flows\": " << p.flows << ",\n"
               << "      \"racks\": " << p.racks << ",\n"
               << "      \"updates\": " << p.ops << ",\n"
               << "      \"exact_us_per_update\": " << p.exact_us
               << ",\n"
               << "      \"fluid_us_per_update\": " << p.fluid_us
               << ",\n"
               << "      \"fluid_mean_dirty_flows\": "
               << p.fluid_mean_dirty << ",\n"
               << "      \"speedup\": " << p.exact_us / p.fluid_us
               << "\n"
               << "    }" << (i + 1 < churn.size() ? "," : "")
               << "\n";
        }
        os << "  ]\n"
           << "}\n";
        std::printf("results written to %s\n", json_path.c_str());
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: parallel replica stats differ "
                             "from sequential\n");
        return 1;
    }
    return 0;
}
