/**
 * @file
 * Reproduces paper Figure 4: number of active jobs and number of
 * active servers over time under the dynamic resource-provisioning
 * policy (case study IV-A).
 *
 * Setup: 50 four-core servers, Wikipedia-like trace, 3-10 ms tasks,
 * min/max load-per-server thresholds. All servers start active;
 * servers are gradually put aside until the load per server falls
 * inside the thresholds, then the active count tracks the trace's
 * fluctuation.
 *
 * Expected shape: active-server count drops steeply from 50 in the
 * initial phase, then follows the offered-job curve.
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "dc/metrics.hh"
#include "sched/provisioning.hh"
#include "sim/logging.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

int
main()
{
    setQuiet(true);
    std::printf("== Figure 4: active jobs and active servers over "
                "time ==\n");

    DataCenterConfig cfg;
    cfg.nServers = 50;
    cfg.nCores = 4;
    cfg.seed = 4;
    DataCenter dc(cfg);

    WikipediaTraceParams wp;
    wp.duration = 600 * sec;
    wp.baseRate = 3000.0;
    wp.diurnalPeriod = 300 * sec;
    wp.diurnalAmplitude = 0.6;
    auto arrivals = makeWikipediaTrace(wp, dc.makeRng("wiki"));

    auto service = std::make_shared<UniformService>(
        3 * msec, 10 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    dc.pumpTrace(std::move(arrivals), jobs);

    ProvisioningConfig pc;
    pc.minLoadPerServer = 0.4;
    pc.maxLoadPerServer = 1.2;
    pc.checkInterval = 250 * msec;
    ProvisioningPolicy prov(dc.scheduler(), pc);
    prov.start();

    GaugeSampler jobs_gauge(dc.sim(),
                            [&] {
                                return static_cast<double>(
                                    dc.scheduler().activeJobs());
                            },
                            2 * sec, "activeJobs");
    GaugeSampler servers_gauge(
        dc.sim(),
        [&] { return static_cast<double>(prov.activeServers()); },
        2 * sec, "activeServers");
    jobs_gauge.start();
    servers_gauge.start();

    dc.runUntil(wp.duration);
    prov.stop();
    jobs_gauge.stop();
    servers_gauge.stop();
    dc.run();

    std::printf("time_s  active_jobs  active_servers\n");
    const auto &js = jobs_gauge.series();
    const auto &ss = servers_gauge.series();
    for (std::size_t i = 0; i < js.size(); i += 5) {
        std::printf("%6.0f  %11.0f  %14.0f\n", toSeconds(js[i].when),
                    js[i].value, ss[i].value);
    }
    std::printf("jobs completed: %llu; park events: %llu; activate "
                "events: %llu\n",
                static_cast<unsigned long long>(
                    dc.scheduler().jobsCompleted()),
                static_cast<unsigned long long>(prov.parkEvents()),
                static_cast<unsigned long long>(
                    prov.activateEvents()));
    return 0;
}
