/**
 * @file
 * Reproduces paper Figure 4: number of active jobs and number of
 * active servers over time under the dynamic resource-provisioning
 * policy (case study IV-A).
 *
 * Setup: 50 four-core servers, Wikipedia-like trace, 3-10 ms tasks,
 * min/max load-per-server thresholds. All servers start active;
 * servers are gradually put aside until the load per server falls
 * inside the thresholds, then the active count tracks the trace's
 * fluctuation.
 *
 * Expected shape: active-server count drops steeply from 50 in the
 * initial phase, then follows the offered-job curve.
 *
 * Runs on the experiment engine:
 *
 *   bench_fig4_provisioning [jobs [replicas]]
 *
 * Replica 0 keeps the historical seed (4), so its printed time
 * series is unchanged; extra replicas rerun the study under fresh
 * seeds and the summary reports cross-replica mean +/- 95% CI.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "dc/datacenter.hh"
#include "dc/metrics.hh"
#include "exp/aggregate.hh"
#include "exp/experiment.hh"
#include "sched/provisioning.hh"
#include "sim/logging.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

namespace {

struct SeriesPair {
    std::vector<Sample> jobs;
    std::vector<Sample> servers;
};

MetricRow
provisionRun(std::uint64_t seed, SeriesPair *series_out)
{
    DataCenterConfig cfg;
    cfg.nServers = 50;
    cfg.nCores = 4;
    cfg.seed = seed;
    DataCenter dc(cfg);

    WikipediaTraceParams wp;
    wp.duration = 600 * sec;
    wp.baseRate = 3000.0;
    wp.diurnalPeriod = 300 * sec;
    wp.diurnalAmplitude = 0.6;
    auto arrivals = makeWikipediaTrace(wp, dc.makeRng("wiki"));

    auto service = std::make_shared<UniformService>(
        3 * msec, 10 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    dc.pumpTrace(std::move(arrivals), jobs);

    ProvisioningConfig pc;
    pc.minLoadPerServer = 0.4;
    pc.maxLoadPerServer = 1.2;
    pc.checkInterval = 250 * msec;
    ProvisioningPolicy prov(dc.scheduler(), pc);
    prov.start();

    GaugeSampler jobs_gauge(dc.sim(),
                            [&] {
                                return static_cast<double>(
                                    dc.scheduler().activeJobs());
                            },
                            2 * sec, "activeJobs");
    GaugeSampler servers_gauge(
        dc.sim(),
        [&] { return static_cast<double>(prov.activeServers()); },
        2 * sec, "activeServers");
    jobs_gauge.start();
    servers_gauge.start();

    dc.runUntil(wp.duration);
    prov.stop();
    jobs_gauge.stop();
    servers_gauge.stop();
    dc.run();

    if (series_out) {
        series_out->jobs = jobs_gauge.series();
        series_out->servers = servers_gauge.series();
    }
    return {
        {"jobs_completed",
         static_cast<double>(dc.scheduler().jobsCompleted())},
        {"park_events", static_cast<double>(prov.parkEvents())},
        {"activate_events",
         static_cast<double>(prov.activateEvents())},
        {"mean_active_jobs", jobs_gauge.mean()},
        {"mean_active_servers", servers_gauge.mean()},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1;
    std::size_t replicas =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;
    if (replicas == 0)
        replicas = 1;

    std::printf("== Figure 4: active jobs and active servers over "
                "time (jobs=%u, replicas=%zu) ==\n",
                n_jobs, replicas);

    // Only replica 0 writes the series slot; the engine runs each
    // (point, replica) cell exactly once, so there is no race.
    SeriesPair series;
    ExperimentEngine engine(n_jobs);
    auto records = engine.run(
        1, replicas, 4,
        [&series](std::size_t, std::size_t replica,
                  std::uint64_t seed) {
            return provisionRun(seed,
                                replica == 0 ? &series : nullptr);
        });

    std::printf("time_s  active_jobs  active_servers\n");
    for (std::size_t i = 0; i < series.jobs.size(); i += 5) {
        std::printf("%6.0f  %11.0f  %14.0f\n",
                    toSeconds(series.jobs[i].when),
                    series.jobs[i].value, series.servers[i].value);
    }

    ResultTable table;
    ExperimentEngine::tabulate(records, table);
    if (replicas == 1) {
        std::printf("jobs completed: %.0f; park events: %.0f; "
                    "activate events: %.0f\n",
                    table.summary(0, "jobs_completed").mean,
                    table.summary(0, "park_events").mean,
                    table.summary(0, "activate_events").mean);
    } else {
        std::printf("across %zu replicas (mean +/- 95%% CI):\n",
                    replicas);
        for (const std::string &metric : table.metrics()) {
            Summary s = table.summary(0, metric);
            std::printf("  %-20s %10.1f +/- %.1f\n", metric.c_str(),
                        s.mean, s.ci95);
        }
    }
    return 0;
}
