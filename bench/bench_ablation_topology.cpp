/**
 * @file
 * Ablation: topology comparison across the paper's four supported
 * architectures -- fat tree and flattened butterfly (switch-based),
 * BCube (hybrid), CamCube (server-only) -- at comparable server
 * counts.
 *
 * Reports structural properties (switch count, average shortest-path
 * hops), measured packet latency under uniform-random traffic, and
 * idle switch power -- the trade-offs section III-B exists to let
 * users study.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "network/network.hh"
#include "sim/random.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

void
runTopology(const char *name, Topology topo)
{
    Simulator sim;
    Network net(sim, std::move(topo),
                SwitchPowerProfile::cisco2960_24());
    const auto &t = net.topology();

    // Average shortest-path hops over sampled server pairs.
    double hops = 0.0;
    unsigned pairs = 0;
    std::size_t n = t.numServers();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; j += 3) {
            hops += net.routing().hopCount(t.serverNode(i),
                                           t.serverNode(j));
            ++pairs;
        }
    }
    hops /= pairs;

    // Uniform-random packet traffic: measure delivered latency.
    Rng rng(31, name);
    int sent = 0;
    for (int i = 0; i < 2000; ++i) {
        std::size_t a = rng.uniformInt(0, n - 1);
        std::size_t b = rng.uniformInt(0, n - 1);
        if (a == b)
            continue;
        net.sendPacket(a, b, 1500, [](const Packet &) {});
        ++sent;
    }
    sim.run();

    std::printf("%-20s  %7zu  %8zu  %8.2f  %12.1f  %10.2f\n", name,
                t.numServers(), t.numSwitches(), hops,
                net.packetLatency().mean() * 1e6,
                net.switchPower());
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Ablation: topology comparison (~16-27 servers) "
                "==\n");
    std::printf("%-20s  %7s  %8s  %8s  %12s  %10s\n", "topology",
                "servers", "switches", "avg_hops", "pkt_lat_us",
                "switch_W");
    runTopology("fat-tree(k=4)",
                Topology::fatTree(4, 1e9, 5 * usec));
    runTopology("flat-butterfly(3,2)",
                Topology::flattenedButterfly(3, 2, 1e9, 5 * usec));
    runTopology("bcube(4,1)", Topology::bcube(4, 1, 1e9, 5 * usec));
    runTopology("camcube(3x3x3)",
                Topology::camCube(3, 3, 3, 1e9, 5 * usec));
    runTopology("star(24)", Topology::star(24, 1e9, 5 * usec));
    return 0;
}
