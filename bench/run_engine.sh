#!/bin/sh
# Run the parallel experiment-engine acceptance bench and leave the
# results (parallel-vs-sequential speedup + bit-identical check, and
# dense-vs-map reshare timings) in BENCH_engine.json at the repo
# root. Exits nonzero if any parallel replica stat differs from the
# sequential run -- CI's perf-smoke step relies on that.
# Usage: bench/run_engine.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_engine.json"

if [ ! -d "$BUILD_DIR" ]; then
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target bench_engine_parallel

"$BUILD_DIR"/bench/bench_engine_parallel --json="$OUT"
echo "engine bench results written to $OUT"
