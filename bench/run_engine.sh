#!/bin/bash
# Run the parallel experiment-engine acceptance bench and leave the
# results (parallel-vs-sequential speedup + bit-identical check,
# dense-vs-map reshare timings, and the exact-vs-fluid network-model
# flow-churn scaling points) in BENCH_engine.json at the repo root.
# Exits nonzero if any parallel replica stat differs from the
# sequential run -- CI's perf-smoke step relies on that.
#
# BENCH_CHURN_MAX caps the largest flow-churn population (default
# 1000000); sanitizer CI runs set it low to keep the job fast while
# still exercising the churn path.
#
# Also exercises campaign crash tolerance end to end: a journaled
# sweep is run to completion, the journal is truncated to simulate a
# crash, and a --resume rerun must skip the journaled cells and
# produce a byte-identical aggregate CSV.
# Usage: bench/run_engine.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_engine.json"

if [ ! -d "$BUILD_DIR" ]; then
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target bench_engine_parallel holdcsim_cli

"$BUILD_DIR"/bench/bench_engine_parallel --json="$OUT" \
    --churn-max="${BENCH_CHURN_MAX:-1000000}"
echo "engine bench results written to $OUT"

# ---- campaign resume acceptance --------------------------------------
CLI="$BUILD_DIR/examples/holdcsim_cli"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/resume.ini" <<'EOF'
[datacenter]
servers = 4
cores = 2
seed = 5
[workload]
arrival = poisson
utilization = 0.3
duration_s = 2
service = exponential
service_mean_ms = 5
job = single
[sweep]
scheduler.policy = round_robin, least_loaded
EOF

"$CLI" "$TMP/resume.ini" --replicas=3 --jobs=2 \
    --journal="$TMP/journal.jsonl" --csv="$TMP/full.csv" > /dev/null

# Simulate a crash after two completed cells.
head -n 2 "$TMP/journal.jsonl" > "$TMP/truncated.jsonl"
mv "$TMP/truncated.jsonl" "$TMP/journal.jsonl"

"$CLI" "$TMP/resume.ini" --replicas=3 --jobs=2 \
    --journal="$TMP/journal.jsonl" --resume \
    --csv="$TMP/resumed.csv" > "$TMP/resume.out"

cmp "$TMP/full.csv" "$TMP/resumed.csv"
grep -q "reliability.campaign.skipped 2" "$TMP/resume.out"
echo "campaign resume: CSV byte-identical, 2 cells skipped"
