/**
 * @file
 * Reproduces the scalability row of paper Table I: HolDCSim
 * simulates more than 20K servers (versus <1K for BigHouse and
 * ~1.5K for CloudSim).
 *
 * The bench instantiates server farms from 1K up to 20,480 servers,
 * drives each with one million Poisson jobs under load-balanced
 * dispatch, and reports wall-clock time, event throughput and job
 * throughput. The 20K+ configuration completing in seconds-to-
 * minutes on a laptop is the claim being checked.
 */

#include <chrono>
#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

void
scaleRun(unsigned n_servers, std::size_t n_jobs)
{
    auto wall0 = std::chrono::steady_clock::now();
    DataCenterConfig cfg;
    cfg.nServers = n_servers;
    cfg.nCores = 4;
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 500 * msec;
    cfg.dispatch = DataCenterConfig::Dispatch::roundRobin;
    cfg.seed = 1;
    DataCenter dc(cfg);
    auto wall1 = std::chrono::steady_clock::now();

    auto svc = std::make_shared<ExponentialService>(
        5 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(svc);
    double lambda = PoissonArrival::rateForUtilization(
        0.3, n_servers, 4, 0.005);
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, n_jobs);
    dc.run();
    auto wall2 = std::chrono::steady_clock::now();

    double build_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    double run_s =
        std::chrono::duration<double>(wall2 - wall1).count();
    std::printf("%8u  %9zu  %8.2f  %8.2f  %10.0f  %11.0f\n",
                n_servers, n_jobs, build_s, run_s,
                dc.sim().eventsProcessed() / run_s, n_jobs / run_s);
    if (dc.scheduler().jobsCompleted() != n_jobs)
        std::printf("  WARNING: only %llu jobs completed\n",
                    static_cast<unsigned long long>(
                        dc.scheduler().jobsCompleted()));
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Table I (scalability row): farm size sweep ==\n");
    std::printf("%8s  %9s  %8s  %8s  %10s  %11s\n", "servers", "jobs",
                "build_s", "run_s", "events/s", "jobs/s");
    scaleRun(1'024, 500'000);
    scaleRun(5'120, 500'000);
    scaleRun(20'480, 1'000'000);
    std::printf("PASS criterion: the 20,480-server farm simulates "
                "without structural limits.\n");
    return 0;
}
