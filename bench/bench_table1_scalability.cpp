/**
 * @file
 * Reproduces the scalability row of paper Table I: HolDCSim
 * simulates more than 20K servers (versus <1K for BigHouse and
 * ~1.5K for CloudSim).
 *
 * The bench instantiates server farms from 1K up to 20,480 servers,
 * drives each with up to one million Poisson jobs under load-balanced
 * dispatch, and reports wall-clock time, event throughput and job
 * throughput. The 20K+ configuration completing in seconds-to-
 * minutes on a laptop is the claim being checked.
 *
 * The farm sizes run as points of the experiment engine:
 *
 *   bench_table1_scalability [jobs [replicas]]
 *
 * With jobs == 1 (the default) points run sequentially and the
 * per-point timings are clean; with jobs > 1 the points (and
 * replicas) share the machine, so per-point throughput readings are
 * contended but the total wall-clock shows the engine speedup.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dc/datacenter.hh"
#include "exp/aggregate.hh"
#include "exp/experiment.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct Farm {
    unsigned nServers;
    std::size_t nJobs;
};

const Farm farms[] = {
    {1'024, 500'000},
    {5'120, 500'000},
    {20'480, 1'000'000},
};

MetricRow
scaleRun(const Farm &farm, std::uint64_t seed)
{
    auto wall0 = std::chrono::steady_clock::now();
    DataCenterConfig cfg;
    cfg.nServers = farm.nServers;
    cfg.nCores = 4;
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 500 * msec;
    cfg.dispatch = DataCenterConfig::Dispatch::roundRobin;
    cfg.seed = seed;
    DataCenter dc(cfg);
    auto wall1 = std::chrono::steady_clock::now();

    auto svc = std::make_shared<ExponentialService>(
        5 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(svc);
    double lambda = PoissonArrival::rateForUtilization(
        0.3, farm.nServers, 4, 0.005);
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, farm.nJobs);
    dc.run();
    auto wall2 = std::chrono::steady_clock::now();

    double build_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    double run_s =
        std::chrono::duration<double>(wall2 - wall1).count();
    return {
        {"build_s", build_s},
        {"run_s", run_s},
        {"events_per_s", dc.sim().eventsProcessed() / run_s},
        {"jobs_per_s", static_cast<double>(farm.nJobs) / run_s},
        {"jobs_completed",
         static_cast<double>(dc.scheduler().jobsCompleted())},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    unsigned n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1;
    std::size_t replicas =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;
    if (replicas == 0)
        replicas = 1;

    std::printf("== Table I (scalability row): farm size sweep "
                "(jobs=%u, replicas=%zu) ==\n",
                n_jobs, replicas);

    auto wall0 = std::chrono::steady_clock::now();
    ExperimentEngine engine(n_jobs);
    auto records =
        engine.run(std::size(farms), replicas, 1,
                   [](std::size_t point, std::size_t,
                      std::uint64_t seed) {
                       return scaleRun(farms[point], seed);
                   });
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall0)
                      .count();

    ResultTable table;
    ExperimentEngine::tabulate(records, table);

    std::printf("%8s  %9s  %8s  %8s  %10s  %11s\n", "servers", "jobs",
                "build_s", "run_s", "events/s", "jobs/s");
    double cpu_s = 0.0;
    for (std::size_t p = 0; p < std::size(farms); ++p) {
        Summary build = table.summary(p, "build_s");
        Summary run = table.summary(p, "run_s");
        std::printf("%8u  %9zu  %8.2f  %8.2f  %10.0f  %11.0f\n",
                    farms[p].nServers, farms[p].nJobs, build.mean,
                    run.mean, table.summary(p, "events_per_s").mean,
                    table.summary(p, "jobs_per_s").mean);
        cpu_s += static_cast<double>(replicas) *
                 (build.mean + run.mean);
        double done = table.summary(p, "jobs_completed").mean;
        if (done != static_cast<double>(farms[p].nJobs))
            std::printf("  WARNING: only %.0f jobs completed\n", done);
    }
    std::printf("total wall %.2f s for %.2f s of simulation work "
                "(%.2fx)\n",
                wall, cpu_s, cpu_s / wall);
    std::printf("PASS criterion: the 20,480-server farm simulates "
                "without structural limits.\n");
    return 0;
}
