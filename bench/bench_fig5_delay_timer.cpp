/**
 * @file
 * Reproduces paper Figure 5: exploration of the single delay-timer
 * parameter for the system on-off mechanism.
 *
 * Setup (section IV-B): a 50-server four-core farm driven by the
 * fluctuating (Wikipedia-like) trace of case study IV-A, rescaled
 * to utilization 0.1 / 0.3 / 0.6; a web search workload (short,
 * ~5 ms service) swept over tau in [0, 5] s and a web serving
 * workload (~120 ms) swept over tau in [0, 20] s.
 *
 * Expected shape: for each (workload, rho) the energy-vs-tau curve
 * is U-shaped -- suspending too eagerly wastes energy on wakeups
 * inside the busy phase, too lazily wastes idle power through the
 * quiet phase -- and the tau minimizing energy is consistent across
 * utilizations for a given workload, with the longer-service
 * workload preferring a much larger tau.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "sim/logging.hh"

using namespace holdcsim;
using namespace holdcsim::bench;

namespace {

void
sweep(const char *name, Tick service, const std::vector<double> &taus,
      Tick duration)
{
    std::printf("== Figure 5: %s (service %.0f ms) ==\n", name,
                toSeconds(service) * 1e3);
    std::printf("%8s", "tau_s");
    for (double rho : {0.1, 0.3, 0.6})
        std::printf("  energy_J(rho=%.1f)", rho);
    std::printf("\n");

    std::vector<double> best_tau;
    for (double rho : {0.1, 0.3, 0.6})
        best_tau.push_back(-1.0), (void)rho;

    std::vector<std::vector<double>> energy(taus.size());
    for (std::size_t ti = 0; ti < taus.size(); ++ti) {
        std::printf("%8.2f", taus[ti]);
        for (double rho : {0.1, 0.3, 0.6}) {
            FarmParams p;
            p.serviceTime = service;
            p.rho = rho;
            p.duration = duration;
            p.tau = fromSeconds(taus[ti]);
            p.seed = 5;
            // Same trace for every tau at a given (workload, rho).
            FarmResult r =
                runFarmWithArrivals(p, makeDiurnalArrivals(p));
            energy[ti].push_back(r.energy);
            std::printf("  %17.0f", r.energy);
        }
        std::printf("\n");
    }

    // Report the optimum per utilization.
    std::printf("optimum  ");
    for (std::size_t ri = 0; ri < 3; ++ri) {
        std::size_t best = 0;
        for (std::size_t ti = 1; ti < taus.size(); ++ti) {
            if (energy[ti][ri] < energy[best][ri])
                best = ti;
        }
        std::printf("  tau*=%.2fs        ", taus[best]);
    }
    std::printf("\n\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    // Web search: tau swept over [0, 5] s as in Figure 5a.
    sweep("web search", 5 * msec,
          {0.0, 0.1, 0.2, 0.4, 0.8, 1.6, 3.0, 5.0}, 120 * sec);
    // Web serving: tau swept over [0, 20] s as in Figure 5b.
    sweep("web serving", 120 * msec,
          {0.0, 0.5, 1.2, 2.4, 4.8, 9.6, 14.4, 20.0}, 300 * sec);
    return 0;
}
