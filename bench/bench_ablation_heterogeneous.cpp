/**
 * @file
 * Ablation: heterogeneous processors (paper section II motivates
 * "heterogeneous processors with performance varying cores ... due
 * to their advantages in bringing better performance-power
 * tradeoff"; Table I lists heterogeneous architecture support).
 *
 * Three fleets with the same aggregate frequency capacity:
 *   (a) homogeneous fast cores,
 *   (b) big.LITTLE mix (half fast, half slow) with the
 *       fastest-free-core local dispatch,
 *   (c) homogeneous slow cores.
 * Expected: the mix lands between the two homogeneous extremes on
 * latency, and the fastest-first local dispatch keeps its tail close
 * to the all-fast fleet at low load (short tasks ride fast cores).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sched/global_scheduler.hh"
#include "server/server.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "workload/arrival.hh"
#include "workload/job_generator.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct HeteroResult {
    double mean_ms, p95_ms;
    Joules cpu_j;
};

HeteroResult
runFleet(const std::vector<double> &core_freqs, double rho)
{
    Simulator sim;
    ServerPowerProfile prof;
    std::vector<std::unique_ptr<Server>> owned;
    std::vector<Server *> servers;
    for (unsigned i = 0; i < 8; ++i) {
        ServerConfig cfg;
        cfg.id = i;
        cfg.nCores = static_cast<unsigned>(core_freqs.size());
        cfg.coreFreqGhz = core_freqs;
        owned.push_back(std::make_unique<Server>(sim, cfg, prof));
        servers.push_back(owned.back().get());
    }
    GlobalScheduler sched(sim, servers,
                          std::make_unique<LeastLoadedPolicy>());

    auto svc = std::make_shared<ExponentialService>(
        5 * msec, Rng(41, "svc"));
    SingleTaskGenerator gen(svc);
    // Rate sized against the aggregate frequency capacity.
    double total_freq = 0.0;
    for (double f : core_freqs)
        total_freq += f;
    double capacity_cores = 8.0 * total_freq / 2.8; // P0-equivalents
    double lambda = rho * capacity_cores / 0.005;

    PoissonArrival arrivals(lambda, Rng(41, "arr"));
    std::size_t injected = 0;
    EventFunctionWrapper inject(
        [&] {
            sched.submitJob(gen.makeJob(sim.curTick()));
            if (++injected < 30'000)
                sim.schedule(inject, arrivals.nextArrival());
        },
        "inject");
    sim.schedule(inject, arrivals.nextArrival());
    sim.run();

    HeteroResult r;
    r.mean_ms = sched.jobLatency().mean() * 1e3;
    r.p95_ms = sched.jobLatency().p95() * 1e3;
    r.cpu_j = 0.0;
    for (Server *s : servers) {
        s->finishStats();
        r.cpu_j += s->energy().cpu;
    }
    return r;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Ablation: heterogeneous processors (equal "
                "aggregate capacity, 8 servers) ==\n");
    std::printf("rho   fleet            mean_ms  p95_ms   cpu_J\n");
    const std::vector<double> fast{2.8, 2.8, 2.8, 2.8};
    const std::vector<double> mixed{2.8, 2.8, 2.8, 2.8,
                                    1.4, 1.4, 1.4, 1.4};
    const std::vector<double> slow{1.4, 1.4, 1.4, 1.4,
                                   1.4, 1.4, 1.4, 1.4};
    for (double rho : {0.2, 0.5}) {
        HeteroResult f = runFleet(fast, rho);
        HeteroResult m = runFleet(mixed, rho);
        HeteroResult s = runFleet(slow, rho);
        std::printf("%.1f   4x2.8GHz         %7.2f  %6.2f  %6.0f\n",
                    rho, f.mean_ms, f.p95_ms, f.cpu_j);
        std::printf("%.1f   4x2.8 + 4x1.4    %7.2f  %6.2f  %6.0f\n",
                    rho, m.mean_ms, m.p95_ms, m.cpu_j);
        std::printf("%.1f   8x1.4GHz         %7.2f  %6.2f  %6.0f\n",
                    rho, s.mean_ms, s.p95_ms, s.cpu_j);
    }
    std::printf("expected: the big.LITTLE mix sits between the "
                "homogeneous extremes; fastest-first local dispatch "
                "keeps its latency near the all-fast fleet at low "
                "load.\n");
    return 0;
}
