/**
 * @file
 * Event-kernel microbenchmark and backend-equivalence checker.
 *
 * Three workloads, each run against both EventQueue backends
 * (two-level calendar vs. plain binary heap):
 *
 *  - hold:  the classic hold model -- a fixed population of events,
 *    each pop immediately reschedules at a random future tick. Pure
 *    pop+schedule throughput at a steady queue size.
 *  - churn: hold plus deschedule/reschedule traffic (the pattern the
 *    delay-timer controllers, LPI ports and retry paths generate).
 *    This is the headline number gating the calendar queue: it must
 *    be at least ~2x the heap backend on pops+schedules per second.
 *  - replay: a hand-built three-tier fleet (web -> app -> db across a
 *    star fabric, as in examples/three_tier.cpp) run end to end on
 *    each backend. The per-request statistics must be bit-identical;
 *    events-per-host-second is reported per backend.
 *  - replay (wheel): the same fleet with the governor timers riding
 *    the shared timer wheel. At unit granularity the workload
 *    statistics must match the per-event timer discipline exactly
 *    (same gate as the backend equivalence); at coarse granularity
 *    the coalesced tick count and throughput are reported.
 *  - warehouse: a --servers=N flat fleet (default 100k x 4 cores)
 *    driven by synchronized task waves, so every core's idle-demotion
 *    ladder re-arms at once. The wheel must complete the same work
 *    while collapsing the per-core governor events into shared
 *    boundary ticks.
 *  - pdes: an 8-pod PodCluster with cross-pod request forwarding run
 *    on the sequential kernel and on 1/2/4 partitions of the
 *    conservative parallel kernel (src/sim/pdes). The deterministic
 *    statistics dumps must be byte-identical across every kernel
 *    configuration; events-per-second and the window-protocol
 *    counters are reported per worker count. Speedups are relative
 *    to the sequential kernel on THIS host -- the JSON records
 *    host_cpus so a 2-core CI box's numbers are not misread as the
 *    paper-scale result.
 *
 * Every workload records the exact pop order (or final statistics)
 * and the binary exits nonzero on any divergence between backends or
 * timer disciplines, so `bench_event_kernel --quick` doubles as the
 * CI determinism smoke test. `--json=FILE` writes the numbers
 * run_kernel_profile.sh folds into BENCH_kernel.json.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dc/datacenter.hh"
#include "dc/pod_cluster.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/timer_wheel.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct NullEvent : Event {
    explicit NullEvent(std::size_t index)
        : Event("bench.null"), idx(index)
    {}
    void process() override {}
    std::size_t idx;
};

/** Draw the next inter-event gap: mostly near-future ticks that land
 *  in calendar buckets, with a 1-in-128 heavy tail far enough out to
 *  spill into the overflow heap. The near-future span scales with the
 *  population (as in a real fleet, where more servers mean more --
 *  not denser -- timer traffic): each event re-fires about every
 *  4*size ticks, keeping tick density at ~0.25 events/tick for every
 *  population size. The heap backend's O(log n) cost is unaffected by
 *  gap magnitude, so the scaling favors neither backend.
 */
Tick
nextGap(Rng &rng, std::size_t size)
{
    if (rng.uniformInt(0, 127) == 0)
        return 1 * sec + rng.uniformInt(0, msec);
    return rng.uniformInt(1, 4 * size);
}

struct KernelRun {
    double seconds = 0.0;
    std::uint64_t ops = 0; // pops + schedules (+ deschedules)
    std::vector<std::size_t> popOrder;
    double opsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(ops) / seconds
                             : 0.0;
    }
};

/** Classic hold model: population of @p size events; each pop
 *  reschedules the popped event at a random future tick. */
KernelRun
runHold(EventQueue::Backend backend, std::size_t size,
        std::uint64_t n_ops, bool record_order)
{
    Rng rng(42, "hold");
    EventQueue q(backend);
    std::deque<NullEvent> events;
    Tick now = 0;
    for (std::size_t i = 0; i < size; ++i) {
        events.emplace_back(i);
        q.schedule(events.back(), now + nextGap(rng, size));
    }
    KernelRun run;
    if (record_order) {
        run.popOrder.reserve(n_ops);
    } else {
        // Untimed warm-up: let the calendar's width calibration and
        // ring resizing reach steady state (two calibration windows
        // plus one full population cycle) before the clock starts.
        for (std::uint64_t op = 0; op < 2 * 8192 + size; ++op) {
            Event &popped = q.pop();
            now = popped.when();
            q.schedule(popped, now + nextGap(rng, size));
        }
    }
    double start = now_seconds();
    for (std::uint64_t op = 0; op < n_ops; ++op) {
        Event &popped = q.pop();
        now = popped.when();
        if (record_order)
            run.popOrder.push_back(
                static_cast<NullEvent &>(popped).idx);
        q.schedule(popped, now + nextGap(rng, size));
    }
    run.seconds = now_seconds() - start;
    run.ops = 2 * n_ops; // one pop + one schedule per iteration
    for (NullEvent &ev : events)
        if (ev.scheduled())
            q.deschedule(ev);
    return run;
}

/** Hold plus deschedule/reschedule churn (timer-cancel pattern). */
KernelRun
runChurn(EventQueue::Backend backend, std::size_t size,
         std::uint64_t n_ops, bool record_order)
{
    Rng rng(43, "churn");
    EventQueue q(backend);
    std::deque<NullEvent> events;
    Tick now = 0;
    for (std::size_t i = 0; i < size; ++i) {
        events.emplace_back(i);
        q.schedule(events.back(), now + nextGap(rng, size));
    }
    KernelRun run;
    if (record_order) {
        run.popOrder.reserve(n_ops);
    } else {
        for (std::uint64_t op = 0; op < 2 * 8192 + size; ++op) {
            Event &popped = q.pop();
            now = popped.when();
            q.schedule(popped, now + nextGap(rng, size));
        }
    }
    std::uint64_t extra_ops = 0;
    double start = now_seconds();
    for (std::uint64_t op = 0; op < n_ops; ++op) {
        Event &popped = q.pop();
        now = popped.when();
        if (record_order)
            run.popOrder.push_back(
                static_cast<NullEvent &>(popped).idx);
        q.schedule(popped, now + nextGap(rng, size));
        // Every 16th iteration a random timer is cancelled and
        // re-armed, every 32nd it is moved (reschedule) -- the
        // delay-timer / LPI cancel rate observed in the farm runs is
        // a few percent of the pop rate.
        if (op % 16 == 0) {
            NullEvent &victim = events[rng.uniformInt(0, size - 1)];
            if (victim.scheduled()) {
                q.deschedule(victim);
                q.schedule(victim, now + nextGap(rng, size));
                extra_ops += 2;
            }
        } else if (op % 32 == 1) {
            NullEvent &victim = events[rng.uniformInt(0, size - 1)];
            if (victim.scheduled()) {
                q.reschedule(victim, now + nextGap(rng, size));
                extra_ops += 1;
            }
        }
    }
    run.seconds = now_seconds() - start;
    run.ops = 2 * n_ops + extra_ops;
    for (NullEvent &ev : events)
        if (ev.scheduled())
            q.deschedule(ev);
    return run;
}

constexpr int webTier = 1;
constexpr int appTier = 2;
constexpr int dbTier = 3;

struct ReplayStats {
    std::uint64_t jobs = 0;
    std::uint64_t transfers = 0;
    std::uint64_t eventsProcessed = 0;
    Tick endTick = 0;
    double latMean = 0.0, latP50 = 0.0, latP95 = 0.0, latP99 = 0.0;
    double wallSeconds = 0.0;
    /** Wheel counters (zero when running per-event timers). */
    std::uint64_t wheelTickEvents = 0;
    std::uint64_t wheelFired = 0;

    bool identicalTo(const ReplayStats &o) const
    {
        // Exact equality on purpose: the backends must be
        // observationally indistinguishable, down to the last bit of
        // every derived statistic.
        return jobs == o.jobs && transfers == o.transfers &&
               eventsProcessed == o.eventsProcessed &&
               endTick == o.endTick && latMean == o.latMean &&
               latP50 == o.latP50 && latP95 == o.latP95 &&
               latP99 == o.latP99;
    }
    /**
     * Workload-statistics equality across timer disciplines. The
     * wheel replaces each governor timer event with a shared boundary
     * tick, so the raw event count legitimately differs; everything
     * the workload can observe must not.
     */
    bool equivalentTo(const ReplayStats &o) const
    {
        return jobs == o.jobs && transfers == o.transfers &&
               endTick == o.endTick && latMean == o.latMean &&
               latP50 == o.latP50 && latP95 == o.latP95 &&
               latP99 == o.latP99;
    }
    double eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(eventsProcessed) / wallSeconds
                   : 0.0;
    }
};

/** The three_tier example fleet, shrunk into a harness: 12 typed
 *  servers behind a star switch serving web->app->db request chains.
 *  @p wheel_granularity 0 keeps per-event timers; otherwise the
 *  governor ladders ride a shared wheel with that bucket width. */
ReplayStats
runReplay(EventQueue::Backend backend, std::size_t n_requests,
          Tick wheel_granularity = 0)
{
    Simulator sim(backend);
    // Declared before every entity so the handles entities still hold
    // at teardown outlive them.
    std::unique_ptr<TimerWheel> wheel;
    if (wheel_granularity > 0) {
        wheel = std::make_unique<TimerWheel>(sim, wheel_granularity);
        sim.setTimerWheel(wheel.get());
    }
    ServerPowerProfile profile;
    Topology topo = Topology::star(12, 1e9, 5 * usec);
    Network net(sim, std::move(topo),
                SwitchPowerProfile::cisco2960_24());

    std::vector<std::unique_ptr<Server>> owned;
    std::vector<Server *> servers;
    for (unsigned i = 0; i < 12; ++i) {
        ServerConfig cfg;
        cfg.id = i;
        cfg.nCores = 4;
        cfg.taskTypes = {i < 4 ? webTier : i < 8 ? appTier : dbTier};
        auto server = std::make_unique<Server>(sim, cfg, profile);
        servers.push_back(server.get());
        owned.push_back(std::move(server));
    }
    GlobalScheduler sched(sim, servers,
                          std::make_unique<LeastLoadedPolicy>(), {},
                          &net);

    auto web = std::make_shared<ExponentialService>(1 * msec,
                                                    Rng(17, "web"));
    auto app = std::make_shared<ExponentialService>(4 * msec,
                                                    Rng(17, "app"));
    auto db = std::make_shared<ExponentialService>(8 * msec,
                                                   Rng(17, "db"));
    ChainJobGenerator requests({web, app, db},
                               {webTier, appTier, dbTier}, 64 * 1024);
    PoissonArrival arrivals(600.0, Rng(17, "arrivals"));
    std::size_t injected = 0;
    EventFunctionWrapper inject(
        [&] {
            sched.submitJob(requests.makeJob(sim.curTick()));
            if (++injected < n_requests)
                sim.schedule(inject, arrivals.nextArrival());
        },
        "inject");
    sim.schedule(inject, arrivals.nextArrival());

    double start = now_seconds();
    sim.run();
    ReplayStats s;
    s.wallSeconds = now_seconds() - start;
    s.jobs = sched.jobsCompleted();
    s.transfers = sched.transfersStarted();
    s.eventsProcessed = sim.eventsProcessed();
    s.endTick = sim.curTick();
    const auto &lat = sched.jobLatency();
    s.latMean = lat.mean();
    s.latP50 = lat.p50();
    s.latP95 = lat.p95();
    s.latP99 = lat.p99();
    if (wheel) {
        s.wheelTickEvents = wheel->stats().tickEvents;
        s.wheelFired = wheel->stats().fired;
    }
    return s;
}

struct WarehouseStats {
    std::uint64_t completions = 0;
    std::uint64_t eventsProcessed = 0;
    Tick endTick = 0;
    double wallSeconds = 0.0;
    std::uint64_t wheelTickEvents = 0;
    std::uint64_t wheelFired = 0;
    std::uint64_t wheelMaxBatch = 0;

    double eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(eventsProcessed) / wallSeconds
                   : 0.0;
    }
};

/**
 * Warehouse-scale governor churn: @p n_servers flat servers (4 cores
 * each, no fabric, no global scheduler) hit by @p waves synchronized
 * waves of one short task per server. Every completion re-enters the
 * idle-demotion ladder at the same instant across the fleet -- the
 * worst case for per-core timer events and the best case for the
 * shared wheel, which folds each aligned boundary into one tick.
 * Only the sim.run() is timed; fleet construction is not.
 */
WarehouseStats
runWarehouse(std::size_t n_servers, unsigned waves,
             Tick wheel_granularity)
{
    Simulator sim(EventQueue::Backend::calendar);
    std::unique_ptr<TimerWheel> wheel;
    if (wheel_granularity > 0) {
        wheel = std::make_unique<TimerWheel>(sim, wheel_granularity);
        sim.setTimerWheel(wheel.get());
    }
    ServerPowerProfile profile;
    std::vector<std::unique_ptr<Server>> servers;
    servers.reserve(n_servers);
    std::uint64_t completions = 0;
    for (std::size_t i = 0; i < n_servers; ++i) {
        ServerConfig cfg;
        cfg.id = static_cast<unsigned>(i);
        cfg.nCores = 4;
        servers.push_back(
            std::make_unique<Server>(sim, cfg, profile));
        servers.back()->setTaskDoneCallback(
            [&completions](Server &, const TaskRef &) {
                ++completions;
            });
    }

    unsigned wave = 0;
    JobId next_job = 0;
    EventFunctionWrapper injector(
        [&] {
            for (auto &s : servers) {
                TaskRef t;
                t.job = next_job++;
                t.serviceTime = 50 * usec;
                s->submit(t);
            }
            if (++wave < waves)
                sim.schedule(injector, sim.curTick() + 2 * msec);
        },
        "warehouse.wave");
    sim.schedule(injector, 1 * msec);

    double start = now_seconds();
    sim.run();
    WarehouseStats w;
    w.wallSeconds = now_seconds() - start;
    w.completions = completions;
    w.eventsProcessed = sim.eventsProcessed();
    w.endTick = sim.curTick();
    if (wheel) {
        w.wheelTickEvents = wheel->stats().tickEvents;
        w.wheelFired = wheel->stats().fired;
        w.wheelMaxBatch = wheel->stats().maxBatch;
    }
    return w;
}

// ---------------------------------------------------------------------------
// pdes: pod-partitioned cluster, sequential vs windowed-parallel.
// ---------------------------------------------------------------------------

struct PdesRun {
    double wallSeconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::uint64_t messages = 0;
    std::uint64_t fastForwards = 0;
    double blockedFraction = 0.0;
    std::string dump;

    double eventsPerSec() const
    {
        return wallSeconds > 0.0 ? double(events) / wallSeconds : 0.0;
    }
};

PdesRun
runPods(const PodClusterConfig &cfg, unsigned partitions)
{
    PodCluster cluster(cfg, partitions);
    double start = now_seconds();
    cluster.run();
    PdesRun r;
    r.wallSeconds = now_seconds() - start;
    r.events = cluster.eventsTotal();
    if (partitions >= 2) {
        const auto &st = cluster.pdesStats();
        r.windows = st.windows;
        r.messages = st.messages;
        r.fastForwards = st.fastForwards;
        r.blockedFraction = st.blockedFraction();
    }
    std::ostringstream os;
    cluster.dumpStats(os);
    r.dump = os.str();
    return r;
}

bool
sameOrder(const char *what, const KernelRun &cal, const KernelRun &heap)
{
    if (cal.popOrder == heap.popOrder)
        return true;
    std::size_t i = 0;
    while (i < cal.popOrder.size() && i < heap.popOrder.size() &&
           cal.popOrder[i] == heap.popOrder[i])
        ++i;
    std::fprintf(stderr,
                 "FAIL: %s pop order diverges at pop %zu "
                 "(calendar=%zu heap=%zu)\n",
                 what, i,
                 i < cal.popOrder.size() ? cal.popOrder[i] : SIZE_MAX,
                 i < heap.popOrder.size() ? heap.popOrder[i]
                                          : SIZE_MAX);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_out;
    std::size_t servers_override = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_out = arg.substr(7);
        } else if (arg.rfind("--servers=", 0) == 0) {
            servers_override =
                static_cast<std::size_t>(std::stoull(arg.substr(10)));
        } else {
            std::fprintf(stderr,
                         "usage: bench_event_kernel [--quick] "
                         "[--json=FILE] [--servers=N]\n");
            return 2;
        }
    }

    const std::size_t hold_small = 1024;
    const std::size_t hold_large = quick ? 8192 : 65536;
    // Headline churn population: the in-flight event count of a
    // ~50-server farm (timers + tasks + flows), where the calendar's
    // working set still fits the cache hierarchy comfortably.
    const std::size_t churn_size = quick ? 2048 : 8192;
    const std::uint64_t n_ops = quick ? 200'000 : 4'000'000;
    const std::size_t n_requests = quick ? 2'000 : 20'000;
    // Warehouse point: the paper-scale fleet. Quick mode keeps the
    // same shape at a size a sanitizer job can afford.
    const std::size_t warehouse_servers =
        servers_override ? servers_override
                         : (quick ? 4'096 : 100'000);
    const unsigned warehouse_waves = 2;
    // Coarse bucket: one boundary per 100 us lines up with the
    // C3/C6 demotion thresholds, so aligned ladders coalesce fully.
    const Tick warehouse_granularity = 100 * usec;
    const Tick replay_coarse_granularity = 1 * msec;

    bool ok = true;

    // ---- equivalence passes (always recorded, always checked) ----
    {
        KernelRun cal = runHold(EventQueue::Backend::calendar,
                                hold_small, n_ops / 4, true);
        KernelRun heap = runHold(EventQueue::Backend::binaryHeap,
                                 hold_small, n_ops / 4, true);
        ok &= sameOrder("hold", cal, heap);
        KernelRun ccal = runChurn(EventQueue::Backend::calendar,
                                  hold_small, n_ops / 4, true);
        KernelRun cheap = runChurn(EventQueue::Backend::binaryHeap,
                                   hold_small, n_ops / 4, true);
        ok &= sameOrder("churn", ccal, cheap);
    }

    // ---- timed passes (order recording off: no push_back in loop) --
    KernelRun holdS_cal = runHold(EventQueue::Backend::calendar,
                                  hold_small, n_ops, false);
    KernelRun holdS_heap = runHold(EventQueue::Backend::binaryHeap,
                                   hold_small, n_ops, false);
    KernelRun holdL_cal = runHold(EventQueue::Backend::calendar,
                                  hold_large, n_ops, false);
    KernelRun holdL_heap = runHold(EventQueue::Backend::binaryHeap,
                                   hold_large, n_ops, false);
    KernelRun churn_cal = runChurn(EventQueue::Backend::calendar,
                                   churn_size, n_ops, false);
    KernelRun churn_heap = runChurn(EventQueue::Backend::binaryHeap,
                                    churn_size, n_ops, false);

    // ---- end-to-end replay: stats must be bit-identical ----------
    ReplayStats replay_cal =
        runReplay(EventQueue::Backend::calendar, n_requests);
    ReplayStats replay_heap =
        runReplay(EventQueue::Backend::binaryHeap, n_requests);
    if (!replay_cal.identicalTo(replay_heap)) {
        std::fprintf(stderr,
                     "FAIL: three-tier replay stats differ between "
                     "backends (jobs %llu/%llu, events %llu/%llu, "
                     "end tick %llu/%llu)\n",
                     (unsigned long long)replay_cal.jobs,
                     (unsigned long long)replay_heap.jobs,
                     (unsigned long long)replay_cal.eventsProcessed,
                     (unsigned long long)replay_heap.eventsProcessed,
                     (unsigned long long)replay_cal.endTick,
                     (unsigned long long)replay_heap.endTick);
        ok = false;
    }

    // ---- timer-wheel gate: unit granularity must match exactly ---
    ReplayStats replay_wheel1 =
        runReplay(EventQueue::Backend::calendar, n_requests, 1);
    if (!replay_wheel1.equivalentTo(replay_cal)) {
        std::fprintf(stderr,
                     "FAIL: unit-granularity wheel replay diverges "
                     "from per-event timers (jobs %llu/%llu, end tick "
                     "%llu/%llu, mean latency %.17g/%.17g)\n",
                     (unsigned long long)replay_wheel1.jobs,
                     (unsigned long long)replay_cal.jobs,
                     (unsigned long long)replay_wheel1.endTick,
                     (unsigned long long)replay_cal.endTick,
                     replay_wheel1.latMean, replay_cal.latMean);
        ok = false;
    }

    // ---- coarse wheel: coalescing throughput (approximate timing) -
    ReplayStats replay_wheelC = runReplay(
        EventQueue::Backend::calendar, n_requests,
        replay_coarse_granularity);
    if (replay_wheelC.jobs != replay_cal.jobs) {
        std::fprintf(stderr,
                     "FAIL: coarse wheel replay lost work (jobs "
                     "%llu/%llu)\n",
                     (unsigned long long)replay_wheelC.jobs,
                     (unsigned long long)replay_cal.jobs);
        ok = false;
    }

    // ---- warehouse fleet: events vs. wheel at 100k x 4 cores ----
    WarehouseStats wh_events =
        runWarehouse(warehouse_servers, warehouse_waves, 0);
    WarehouseStats wh_wheel = runWarehouse(
        warehouse_servers, warehouse_waves, warehouse_granularity);
    if (wh_events.completions != wh_wheel.completions ||
        wh_events.completions !=
            warehouse_servers * warehouse_waves) {
        std::fprintf(stderr,
                     "FAIL: warehouse completions differ (events "
                     "%llu, wheel %llu, expected %llu)\n",
                     (unsigned long long)wh_events.completions,
                     (unsigned long long)wh_wheel.completions,
                     (unsigned long long)(warehouse_servers *
                                          warehouse_waves));
        ok = false;
    }

    // ---- pdes: the parallel kernel must be statistics-invisible --
    PodClusterConfig pdes_cfg;
    pdes_cfg.pods = 8;
    pdes_cfg.requestsPerPod = quick ? 600 : 6'000;
    pdes_cfg.arrivalRate = 1'500.0;
    pdes_cfg.forwardProbability = 0.3;
    // A metro-scale 1 ms inter-pod latency: wide windows amortize the
    // barrier, which a 2-core CI host needs to show any overlap at
    // all. The conservative protocol is latency-bound by design --
    // the tests cover the tight 20 us default.
    pdes_cfg.interPodLatency = 1 * msec;
    pdes_cfg.statsHorizon = quick ? 1 * sec : 6 * sec;
    pdes_cfg.seed = 7;

    PdesRun pdes_seq = runPods(pdes_cfg, 0);
    const unsigned pdes_workers[] = {1, 2, 4};
    std::vector<PdesRun> pdes_par;
    for (unsigned w : pdes_workers) {
        pdes_par.push_back(runPods(pdes_cfg, w));
        if (pdes_par.back().dump != pdes_seq.dump) {
            std::fprintf(stderr,
                         "FAIL: pdes dump with %u partitions differs "
                         "from the sequential kernel\n",
                         w);
            ok = false;
        }
    }

    double hold_small_speedup =
        holdS_heap.opsPerSec() > 0.0
            ? holdS_cal.opsPerSec() / holdS_heap.opsPerSec()
            : 0.0;
    double hold_large_speedup =
        holdL_heap.opsPerSec() > 0.0
            ? holdL_cal.opsPerSec() / holdL_heap.opsPerSec()
            : 0.0;
    double churn_speedup =
        churn_heap.opsPerSec() > 0.0
            ? churn_cal.opsPerSec() / churn_heap.opsPerSec()
            : 0.0;

    std::printf("workload            calendar ops/s      heap ops/s  "
                "speedup\n");
    std::printf("hold  n=%-6zu  %15.0f %15.0f    %.2fx\n", hold_small,
                holdS_cal.opsPerSec(), holdS_heap.opsPerSec(),
                hold_small_speedup);
    std::printf("hold  n=%-6zu  %15.0f %15.0f    %.2fx\n", hold_large,
                holdL_cal.opsPerSec(), holdL_heap.opsPerSec(),
                hold_large_speedup);
    std::printf("churn n=%-6zu  %15.0f %15.0f    %.2fx\n", churn_size,
                churn_cal.opsPerSec(), churn_heap.opsPerSec(),
                churn_speedup);
    std::printf("replay (three-tier, %zu requests): calendar %.0f "
                "events/s, heap %.0f events/s\n",
                n_requests, replay_cal.eventsPerSec(),
                replay_heap.eventsPerSec());
    std::printf("replay wheel g=1: %.0f events/s, %llu governor "
                "timers in %llu ticks, stats %s\n",
                replay_wheel1.eventsPerSec(),
                (unsigned long long)replay_wheel1.wheelFired,
                (unsigned long long)replay_wheel1.wheelTickEvents,
                replay_wheel1.equivalentTo(replay_cal) ? "identical"
                                                       : "DIVERGED");
    std::printf("replay wheel g=%lluus: %.0f events/s, %llu governor "
                "timers coalesced into %llu ticks (%llu -> %llu "
                "events processed)\n",
                (unsigned long long)(replay_coarse_granularity / usec),
                replay_wheelC.eventsPerSec(),
                (unsigned long long)replay_wheelC.wheelFired,
                (unsigned long long)replay_wheelC.wheelTickEvents,
                (unsigned long long)replay_cal.eventsProcessed,
                (unsigned long long)replay_wheelC.eventsProcessed);
    std::printf("warehouse (%zu servers x 4 cores, %u waves): events "
                "%.0f ev/s (%llu events), wheel %.0f ev/s (%llu "
                "events, %llu timers in %llu ticks, max batch "
                "%llu)\n",
                warehouse_servers, warehouse_waves,
                wh_events.eventsPerSec(),
                (unsigned long long)wh_events.eventsProcessed,
                wh_wheel.eventsPerSec(),
                (unsigned long long)wh_wheel.eventsProcessed,
                (unsigned long long)wh_wheel.wheelFired,
                (unsigned long long)wh_wheel.wheelTickEvents,
                (unsigned long long)wh_wheel.wheelMaxBatch);
    const unsigned host_cpus = std::thread::hardware_concurrency();
    std::printf("pdes (%u pods, %zu req/pod, host_cpus=%u): "
                "sequential %.0f ev/s\n",
                pdes_cfg.pods, pdes_cfg.requestsPerPod, host_cpus,
                pdes_seq.eventsPerSec());
    for (std::size_t i = 0; i < pdes_par.size(); ++i) {
        const PdesRun &r = pdes_par[i];
        std::printf("pdes workers=%u: %.0f ev/s (%.2fx), %llu windows, "
                    "%llu messages, %llu fast-forwards, blocked "
                    "%.0f%%, stats %s\n",
                    pdes_workers[i], r.eventsPerSec(),
                    pdes_seq.eventsPerSec() > 0.0
                        ? r.eventsPerSec() / pdes_seq.eventsPerSec()
                        : 0.0,
                    (unsigned long long)r.windows,
                    (unsigned long long)r.messages,
                    (unsigned long long)r.fastForwards,
                    100.0 * r.blockedFraction,
                    r.dump == pdes_seq.dump ? "identical" : "DIVERGED");
    }
    std::printf("backend equivalence: %s\n", ok ? "OK" : "FAILED");

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os)
            fatal("cannot open '", json_out, "' for writing");
        os << "{\n";
        os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        os << "  \"ops\": " << n_ops << ",\n";
        os << "  \"hold_small\": {\"n\": " << hold_small
           << ", \"calendar_ops_per_sec\": " << holdS_cal.opsPerSec()
           << ", \"heap_ops_per_sec\": " << holdS_heap.opsPerSec()
           << ", \"speedup\": " << hold_small_speedup << "},\n";
        os << "  \"hold_large\": {\"n\": " << hold_large
           << ", \"calendar_ops_per_sec\": " << holdL_cal.opsPerSec()
           << ", \"heap_ops_per_sec\": " << holdL_heap.opsPerSec()
           << ", \"speedup\": " << hold_large_speedup << "},\n";
        os << "  \"churn\": {\"n\": " << churn_size
           << ", \"calendar_ops_per_sec\": " << churn_cal.opsPerSec()
           << ", \"heap_ops_per_sec\": " << churn_heap.opsPerSec()
           << ", \"speedup\": " << churn_speedup << "},\n";
        os << "  \"replay\": {\"requests\": " << n_requests
           << ", \"calendar_events_per_sec\": "
           << replay_cal.eventsPerSec()
           << ", \"heap_events_per_sec\": "
           << replay_heap.eventsPerSec()
           << ", \"stats_identical\": "
           << (replay_cal.identicalTo(replay_heap) ? "true" : "false")
           << "},\n";
        os << "  \"replay_wheel\": {\"unit_events_per_sec\": "
           << replay_wheel1.eventsPerSec()
           << ", \"unit_stats_identical\": "
           << (replay_wheel1.equivalentTo(replay_cal) ? "true"
                                                      : "false")
           << ", \"coarse_granularity_us\": "
           << replay_coarse_granularity / usec
           << ", \"coarse_events_per_sec\": "
           << replay_wheelC.eventsPerSec()
           << ", \"coarse_events_processed\": "
           << replay_wheelC.eventsProcessed
           << ", \"events_mode_events_processed\": "
           << replay_cal.eventsProcessed
           << ", \"coarse_timers_fired\": " << replay_wheelC.wheelFired
           << ", \"coarse_tick_events\": "
           << replay_wheelC.wheelTickEvents << "},\n";
        os << "  \"warehouse\": {\"servers\": " << warehouse_servers
           << ", \"cores_per_server\": 4"
           << ", \"waves\": " << warehouse_waves
           << ", \"events_mode_events_per_sec\": "
           << wh_events.eventsPerSec()
           << ", \"events_mode_events_processed\": "
           << wh_events.eventsProcessed
           << ", \"events_mode_wall_seconds\": "
           << wh_events.wallSeconds
           << ", \"wheel_wall_seconds\": " << wh_wheel.wallSeconds
           << ", \"wheel_granularity_us\": "
           << warehouse_granularity / usec
           << ", \"wheel_events_per_sec\": " << wh_wheel.eventsPerSec()
           << ", \"wheel_events_processed\": "
           << wh_wheel.eventsProcessed
           << ", \"wheel_timers_fired\": " << wh_wheel.wheelFired
           << ", \"wheel_tick_events\": " << wh_wheel.wheelTickEvents
           << ", \"wheel_max_batch\": " << wh_wheel.wheelMaxBatch
           << ", \"completions_identical\": "
           << (wh_events.completions == wh_wheel.completions
                   ? "true"
                   : "false")
           << "},\n";
        os << "  \"pdes\": {\"pods\": " << pdes_cfg.pods
           << ", \"requests_per_pod\": " << pdes_cfg.requestsPerPod
           << ", \"host_cpus\": " << host_cpus
           << ", \"lookahead_us\": "
           << pdes_cfg.interPodLatency / usec
           << ", \"sequential_events_per_sec\": "
           << pdes_seq.eventsPerSec()
           << ", \"events_total\": " << pdes_seq.events
           << ", \"workers\": [";
        for (std::size_t i = 0; i < pdes_par.size(); ++i) {
            const PdesRun &r = pdes_par[i];
            os << (i ? ", " : "") << "{\"workers\": "
               << pdes_workers[i]
               << ", \"events_per_sec\": " << r.eventsPerSec()
               << ", \"speedup\": "
               << (pdes_seq.eventsPerSec() > 0.0
                       ? r.eventsPerSec() / pdes_seq.eventsPerSec()
                       : 0.0)
               << ", \"windows\": " << r.windows
               << ", \"messages\": " << r.messages
               << ", \"fast_forwards\": " << r.fastForwards
               << ", \"blocked_fraction\": " << r.blockedFraction
               << ", \"stats_identical\": "
               << (r.dump == pdes_seq.dump ? "true" : "false") << "}";
        }
        os << "]},\n";
        os << "  \"backends_equivalent\": " << (ok ? "true" : "false")
           << "\n";
        os << "}\n";
    }
    return ok ? 0 : 1;
}
