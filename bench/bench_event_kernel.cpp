/**
 * @file
 * Event-kernel microbenchmark and backend-equivalence checker.
 *
 * Three workloads, each run against both EventQueue backends
 * (two-level calendar vs. plain binary heap):
 *
 *  - hold:  the classic hold model -- a fixed population of events,
 *    each pop immediately reschedules at a random future tick. Pure
 *    pop+schedule throughput at a steady queue size.
 *  - churn: hold plus deschedule/reschedule traffic (the pattern the
 *    delay-timer controllers, LPI ports and retry paths generate).
 *    This is the headline number gating the calendar queue: it must
 *    be at least ~2x the heap backend on pops+schedules per second.
 *  - replay: a hand-built three-tier fleet (web -> app -> db across a
 *    star fabric, as in examples/three_tier.cpp) run end to end on
 *    each backend. The per-request statistics must be bit-identical;
 *    events-per-host-second is reported per backend.
 *
 * Every workload records the exact pop order (or final statistics)
 * and the binary exits nonzero on any divergence between backends, so
 * `bench_event_kernel --quick` doubles as the CI determinism smoke
 * test. `--json=FILE` writes the numbers run_kernel_profile.sh folds
 * into BENCH_kernel.json.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dc/datacenter.hh"
#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct NullEvent : Event {
    explicit NullEvent(std::size_t index)
        : Event("bench.null"), idx(index)
    {}
    void process() override {}
    std::size_t idx;
};

/** Draw the next inter-event gap: mostly near-future ticks that land
 *  in calendar buckets, with a 1-in-128 heavy tail far enough out to
 *  spill into the overflow heap. The near-future span scales with the
 *  population (as in a real fleet, where more servers mean more --
 *  not denser -- timer traffic): each event re-fires about every
 *  4*size ticks, keeping tick density at ~0.25 events/tick for every
 *  population size. The heap backend's O(log n) cost is unaffected by
 *  gap magnitude, so the scaling favors neither backend.
 */
Tick
nextGap(Rng &rng, std::size_t size)
{
    if (rng.uniformInt(0, 127) == 0)
        return 1 * sec + rng.uniformInt(0, msec);
    return rng.uniformInt(1, 4 * size);
}

struct KernelRun {
    double seconds = 0.0;
    std::uint64_t ops = 0; // pops + schedules (+ deschedules)
    std::vector<std::size_t> popOrder;
    double opsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(ops) / seconds
                             : 0.0;
    }
};

/** Classic hold model: population of @p size events; each pop
 *  reschedules the popped event at a random future tick. */
KernelRun
runHold(EventQueue::Backend backend, std::size_t size,
        std::uint64_t n_ops, bool record_order)
{
    Rng rng(42, "hold");
    EventQueue q(backend);
    std::deque<NullEvent> events;
    Tick now = 0;
    for (std::size_t i = 0; i < size; ++i) {
        events.emplace_back(i);
        q.schedule(events.back(), now + nextGap(rng, size));
    }
    KernelRun run;
    if (record_order) {
        run.popOrder.reserve(n_ops);
    } else {
        // Untimed warm-up: let the calendar's width calibration and
        // ring resizing reach steady state (two calibration windows
        // plus one full population cycle) before the clock starts.
        for (std::uint64_t op = 0; op < 2 * 8192 + size; ++op) {
            Event &popped = q.pop();
            now = popped.when();
            q.schedule(popped, now + nextGap(rng, size));
        }
    }
    double start = now_seconds();
    for (std::uint64_t op = 0; op < n_ops; ++op) {
        Event &popped = q.pop();
        now = popped.when();
        if (record_order)
            run.popOrder.push_back(
                static_cast<NullEvent &>(popped).idx);
        q.schedule(popped, now + nextGap(rng, size));
    }
    run.seconds = now_seconds() - start;
    run.ops = 2 * n_ops; // one pop + one schedule per iteration
    for (NullEvent &ev : events)
        if (ev.scheduled())
            q.deschedule(ev);
    return run;
}

/** Hold plus deschedule/reschedule churn (timer-cancel pattern). */
KernelRun
runChurn(EventQueue::Backend backend, std::size_t size,
         std::uint64_t n_ops, bool record_order)
{
    Rng rng(43, "churn");
    EventQueue q(backend);
    std::deque<NullEvent> events;
    Tick now = 0;
    for (std::size_t i = 0; i < size; ++i) {
        events.emplace_back(i);
        q.schedule(events.back(), now + nextGap(rng, size));
    }
    KernelRun run;
    if (record_order) {
        run.popOrder.reserve(n_ops);
    } else {
        for (std::uint64_t op = 0; op < 2 * 8192 + size; ++op) {
            Event &popped = q.pop();
            now = popped.when();
            q.schedule(popped, now + nextGap(rng, size));
        }
    }
    std::uint64_t extra_ops = 0;
    double start = now_seconds();
    for (std::uint64_t op = 0; op < n_ops; ++op) {
        Event &popped = q.pop();
        now = popped.when();
        if (record_order)
            run.popOrder.push_back(
                static_cast<NullEvent &>(popped).idx);
        q.schedule(popped, now + nextGap(rng, size));
        // Every 16th iteration a random timer is cancelled and
        // re-armed, every 32nd it is moved (reschedule) -- the
        // delay-timer / LPI cancel rate observed in the farm runs is
        // a few percent of the pop rate.
        if (op % 16 == 0) {
            NullEvent &victim = events[rng.uniformInt(0, size - 1)];
            if (victim.scheduled()) {
                q.deschedule(victim);
                q.schedule(victim, now + nextGap(rng, size));
                extra_ops += 2;
            }
        } else if (op % 32 == 1) {
            NullEvent &victim = events[rng.uniformInt(0, size - 1)];
            if (victim.scheduled()) {
                q.reschedule(victim, now + nextGap(rng, size));
                extra_ops += 1;
            }
        }
    }
    run.seconds = now_seconds() - start;
    run.ops = 2 * n_ops + extra_ops;
    for (NullEvent &ev : events)
        if (ev.scheduled())
            q.deschedule(ev);
    return run;
}

constexpr int webTier = 1;
constexpr int appTier = 2;
constexpr int dbTier = 3;

struct ReplayStats {
    std::uint64_t jobs = 0;
    std::uint64_t transfers = 0;
    std::uint64_t eventsProcessed = 0;
    Tick endTick = 0;
    double latMean = 0.0, latP50 = 0.0, latP95 = 0.0, latP99 = 0.0;
    double wallSeconds = 0.0;

    bool identicalTo(const ReplayStats &o) const
    {
        // Exact equality on purpose: the backends must be
        // observationally indistinguishable, down to the last bit of
        // every derived statistic.
        return jobs == o.jobs && transfers == o.transfers &&
               eventsProcessed == o.eventsProcessed &&
               endTick == o.endTick && latMean == o.latMean &&
               latP50 == o.latP50 && latP95 == o.latP95 &&
               latP99 == o.latP99;
    }
    double eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(eventsProcessed) / wallSeconds
                   : 0.0;
    }
};

/** The three_tier example fleet, shrunk into a harness: 12 typed
 *  servers behind a star switch serving web->app->db request chains. */
ReplayStats
runReplay(EventQueue::Backend backend, std::size_t n_requests)
{
    Simulator sim(backend);
    ServerPowerProfile profile;
    Topology topo = Topology::star(12, 1e9, 5 * usec);
    Network net(sim, std::move(topo),
                SwitchPowerProfile::cisco2960_24());

    std::vector<std::unique_ptr<Server>> owned;
    std::vector<Server *> servers;
    for (unsigned i = 0; i < 12; ++i) {
        ServerConfig cfg;
        cfg.id = i;
        cfg.nCores = 4;
        cfg.taskTypes = {i < 4 ? webTier : i < 8 ? appTier : dbTier};
        auto server = std::make_unique<Server>(sim, cfg, profile);
        servers.push_back(server.get());
        owned.push_back(std::move(server));
    }
    GlobalScheduler sched(sim, servers,
                          std::make_unique<LeastLoadedPolicy>(), {},
                          &net);

    auto web = std::make_shared<ExponentialService>(1 * msec,
                                                    Rng(17, "web"));
    auto app = std::make_shared<ExponentialService>(4 * msec,
                                                    Rng(17, "app"));
    auto db = std::make_shared<ExponentialService>(8 * msec,
                                                   Rng(17, "db"));
    ChainJobGenerator requests({web, app, db},
                               {webTier, appTier, dbTier}, 64 * 1024);
    PoissonArrival arrivals(600.0, Rng(17, "arrivals"));
    std::size_t injected = 0;
    EventFunctionWrapper inject(
        [&] {
            sched.submitJob(requests.makeJob(sim.curTick()));
            if (++injected < n_requests)
                sim.schedule(inject, arrivals.nextArrival());
        },
        "inject");
    sim.schedule(inject, arrivals.nextArrival());

    double start = now_seconds();
    sim.run();
    ReplayStats s;
    s.wallSeconds = now_seconds() - start;
    s.jobs = sched.jobsCompleted();
    s.transfers = sched.transfersStarted();
    s.eventsProcessed = sim.eventsProcessed();
    s.endTick = sim.curTick();
    const auto &lat = sched.jobLatency();
    s.latMean = lat.mean();
    s.latP50 = lat.p50();
    s.latP95 = lat.p95();
    s.latP99 = lat.p99();
    return s;
}

bool
sameOrder(const char *what, const KernelRun &cal, const KernelRun &heap)
{
    if (cal.popOrder == heap.popOrder)
        return true;
    std::size_t i = 0;
    while (i < cal.popOrder.size() && i < heap.popOrder.size() &&
           cal.popOrder[i] == heap.popOrder[i])
        ++i;
    std::fprintf(stderr,
                 "FAIL: %s pop order diverges at pop %zu "
                 "(calendar=%zu heap=%zu)\n",
                 what, i,
                 i < cal.popOrder.size() ? cal.popOrder[i] : SIZE_MAX,
                 i < heap.popOrder.size() ? heap.popOrder[i]
                                          : SIZE_MAX);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_out = arg.substr(7);
        } else {
            std::fprintf(stderr,
                         "usage: bench_event_kernel [--quick] "
                         "[--json=FILE]\n");
            return 2;
        }
    }

    const std::size_t hold_small = 1024;
    const std::size_t hold_large = quick ? 8192 : 65536;
    // Headline churn population: the in-flight event count of a
    // ~50-server farm (timers + tasks + flows), where the calendar's
    // working set still fits the cache hierarchy comfortably.
    const std::size_t churn_size = quick ? 2048 : 8192;
    const std::uint64_t n_ops = quick ? 200'000 : 4'000'000;
    const std::size_t n_requests = quick ? 2'000 : 20'000;

    bool ok = true;

    // ---- equivalence passes (always recorded, always checked) ----
    {
        KernelRun cal = runHold(EventQueue::Backend::calendar,
                                hold_small, n_ops / 4, true);
        KernelRun heap = runHold(EventQueue::Backend::binaryHeap,
                                 hold_small, n_ops / 4, true);
        ok &= sameOrder("hold", cal, heap);
        KernelRun ccal = runChurn(EventQueue::Backend::calendar,
                                  hold_small, n_ops / 4, true);
        KernelRun cheap = runChurn(EventQueue::Backend::binaryHeap,
                                   hold_small, n_ops / 4, true);
        ok &= sameOrder("churn", ccal, cheap);
    }

    // ---- timed passes (order recording off: no push_back in loop) --
    KernelRun holdS_cal = runHold(EventQueue::Backend::calendar,
                                  hold_small, n_ops, false);
    KernelRun holdS_heap = runHold(EventQueue::Backend::binaryHeap,
                                   hold_small, n_ops, false);
    KernelRun holdL_cal = runHold(EventQueue::Backend::calendar,
                                  hold_large, n_ops, false);
    KernelRun holdL_heap = runHold(EventQueue::Backend::binaryHeap,
                                   hold_large, n_ops, false);
    KernelRun churn_cal = runChurn(EventQueue::Backend::calendar,
                                   churn_size, n_ops, false);
    KernelRun churn_heap = runChurn(EventQueue::Backend::binaryHeap,
                                    churn_size, n_ops, false);

    // ---- end-to-end replay: stats must be bit-identical ----------
    ReplayStats replay_cal =
        runReplay(EventQueue::Backend::calendar, n_requests);
    ReplayStats replay_heap =
        runReplay(EventQueue::Backend::binaryHeap, n_requests);
    if (!replay_cal.identicalTo(replay_heap)) {
        std::fprintf(stderr,
                     "FAIL: three-tier replay stats differ between "
                     "backends (jobs %llu/%llu, events %llu/%llu, "
                     "end tick %llu/%llu)\n",
                     (unsigned long long)replay_cal.jobs,
                     (unsigned long long)replay_heap.jobs,
                     (unsigned long long)replay_cal.eventsProcessed,
                     (unsigned long long)replay_heap.eventsProcessed,
                     (unsigned long long)replay_cal.endTick,
                     (unsigned long long)replay_heap.endTick);
        ok = false;
    }

    double hold_small_speedup =
        holdS_heap.opsPerSec() > 0.0
            ? holdS_cal.opsPerSec() / holdS_heap.opsPerSec()
            : 0.0;
    double hold_large_speedup =
        holdL_heap.opsPerSec() > 0.0
            ? holdL_cal.opsPerSec() / holdL_heap.opsPerSec()
            : 0.0;
    double churn_speedup =
        churn_heap.opsPerSec() > 0.0
            ? churn_cal.opsPerSec() / churn_heap.opsPerSec()
            : 0.0;

    std::printf("workload            calendar ops/s      heap ops/s  "
                "speedup\n");
    std::printf("hold  n=%-6zu  %15.0f %15.0f    %.2fx\n", hold_small,
                holdS_cal.opsPerSec(), holdS_heap.opsPerSec(),
                hold_small_speedup);
    std::printf("hold  n=%-6zu  %15.0f %15.0f    %.2fx\n", hold_large,
                holdL_cal.opsPerSec(), holdL_heap.opsPerSec(),
                hold_large_speedup);
    std::printf("churn n=%-6zu  %15.0f %15.0f    %.2fx\n", churn_size,
                churn_cal.opsPerSec(), churn_heap.opsPerSec(),
                churn_speedup);
    std::printf("replay (three-tier, %zu requests): calendar %.0f "
                "events/s, heap %.0f events/s\n",
                n_requests, replay_cal.eventsPerSec(),
                replay_heap.eventsPerSec());
    std::printf("backend equivalence: %s\n", ok ? "OK" : "FAILED");

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os)
            fatal("cannot open '", json_out, "' for writing");
        os << "{\n";
        os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        os << "  \"ops\": " << n_ops << ",\n";
        os << "  \"hold_small\": {\"n\": " << hold_small
           << ", \"calendar_ops_per_sec\": " << holdS_cal.opsPerSec()
           << ", \"heap_ops_per_sec\": " << holdS_heap.opsPerSec()
           << ", \"speedup\": " << hold_small_speedup << "},\n";
        os << "  \"hold_large\": {\"n\": " << hold_large
           << ", \"calendar_ops_per_sec\": " << holdL_cal.opsPerSec()
           << ", \"heap_ops_per_sec\": " << holdL_heap.opsPerSec()
           << ", \"speedup\": " << hold_large_speedup << "},\n";
        os << "  \"churn\": {\"n\": " << churn_size
           << ", \"calendar_ops_per_sec\": " << churn_cal.opsPerSec()
           << ", \"heap_ops_per_sec\": " << churn_heap.opsPerSec()
           << ", \"speedup\": " << churn_speedup << "},\n";
        os << "  \"replay\": {\"requests\": " << n_requests
           << ", \"calendar_events_per_sec\": "
           << replay_cal.eventsPerSec()
           << ", \"heap_events_per_sec\": "
           << replay_heap.eventsPerSec()
           << ", \"stats_identical\": "
           << (replay_cal.identicalTo(replay_heap) ? "true" : "false")
           << "},\n";
        os << "  \"backends_equivalent\": " << (ok ? "true" : "false")
           << "\n";
        os << "}\n";
    }
    return ok ? 0 : 1;
}
