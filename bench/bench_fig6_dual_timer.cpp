/**
 * @file
 * Reproduces paper Figure 6: energy reduction of the dual
 * delay-timer policy over the Active-Idle baseline, for web search
 * ("Google") and web serving ("Apache") workloads at utilization
 * 0.1 / 0.3 / 0.6 on 20- and 100-server farms.
 *
 * Expected shape: substantial (tens of percent, up to ~45%) energy
 * reduction, larger at low utilization, similar across farm sizes,
 * with job tail latency staying comparable.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "sched/adaptive_policy.hh"
#include "sim/logging.hh"

using namespace holdcsim;
using namespace holdcsim::bench;

namespace {

struct DualResult {
    Joules energy;
    double p95Sec;
};

DualResult
runDual(unsigned n_servers, Tick service, double rho, Tick tau_high,
        Tick tau_low, Tick duration)
{
    DataCenterConfig cfg;
    cfg.nServers = n_servers;
    cfg.nCores = 4;
    cfg.seed = 6;
    DataCenter dc(cfg);

    DualTimerConfig dt;
    // High pool sized to carry the offered load at ~75% pool
    // utilization, with one server of headroom.
    dt.highPoolSize = std::min<std::size_t>(
        n_servers,
        static_cast<std::size_t>(rho * n_servers / 0.75) + 1);
    dt.tauHigh = tau_high;
    dt.tauLow = tau_low;
    configureDualTimers(dc.scheduler(), dt);

    auto svc = std::make_shared<ExponentialService>(
        service, dc.makeRng("service"));
    SingleTaskGenerator jobs(svc);
    double lambda = PoissonArrival::rateForUtilization(
        rho, n_servers, 4, toSeconds(service));
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), duration);
    dc.runUntil(duration);
    dc.run();
    dc.finishStats();
    return DualResult{dc.energy().total.total(),
                      dc.scheduler().jobLatency().p95()};
}

void
farmSize(unsigned n_servers)
{
    std::printf("-- %u servers --\n", n_servers);
    std::printf("workload     rho  baseline_J  dual_J    saving  "
                "base_p95_ms  dual_p95_ms\n");
    struct Wl {
        const char *name;
        Tick service;
        Tick tauHigh, tauLow;
        Tick duration;
    };
    const Wl wls[] = {
        {"Google (search)", 5 * msec, 800 * msec, 50 * msec, 30 * sec},
        {"Apache (serving)", 120 * msec, 2400 * msec, 200 * msec,
         120 * sec},
    };
    for (const Wl &wl : wls) {
        for (double rho : {0.1, 0.3, 0.6}) {
            FarmParams base;
            base.nServers = n_servers;
            base.serviceTime = wl.service;
            base.rho = rho;
            base.duration = wl.duration;
            base.tau = maxTick; // Active-Idle
            base.seed = 6;
            FarmResult b = runFarm(base);
            DualResult d =
                runDual(n_servers, wl.service, rho, wl.tauHigh,
                        wl.tauLow, wl.duration);
            std::printf("%-16s %.1f  %10.0f  %8.0f  %5.1f%%  %11.2f  "
                        "%11.2f\n",
                        wl.name, rho, b.energy, d.energy,
                        100.0 * (1.0 - d.energy / b.energy),
                        b.p95Sec * 1e3, d.p95Sec * 1e3);
        }
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Figure 6: dual delay timers vs Active-Idle ==\n");
    farmSize(20);
    farmSize(100);
    return 0;
}
