/**
 * @file
 * Ablation: single delay timer under bursty MMPP arrivals (paper
 * footnote 1: "the single delay timer may not be effective when the
 * job arrivals are highly bursty ... extra server power management
 * mechanism is needed to activate servers in time").
 *
 * A farm with the web-search-optimal tau is driven by a Poisson
 * process and by 2-state MMPP processes of growing burstiness ratio
 * Ra at the same average rate. Expected shape: energy stays similar
 * but tail latency (p99) degrades sharply with burstiness as jobs
 * pile onto sleeping servers that need the full wake latency.
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct BurstResult {
    Joules energy;
    double p99_ms;
    double mean_ms;
};

BurstResult
runOnce(std::unique_ptr<ArrivalProcess> arrivals, Tick duration)
{
    DataCenterConfig cfg;
    cfg.nServers = 20;
    cfg.nCores = 4;
    cfg.controller = DataCenterConfig::Controller::delayTimer;
    cfg.delayTimerTau = 400 * msec; // web-search optimum (Fig 5a)
    cfg.seed = 27;
    DataCenter dc(cfg);
    auto svc = std::make_shared<ExponentialService>(
        5 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(svc);
    dc.pump(std::move(arrivals), jobs,
            static_cast<std::size_t>(-1), duration);
    dc.runUntil(duration);
    dc.run();
    dc.finishStats();
    const auto &lat = dc.scheduler().jobLatency();
    return BurstResult{dc.energy().total.total(), lat.p99() * 1e3,
                       lat.mean() * 1e3};
}

} // namespace

int
main()
{
    setQuiet(true);
    const double rho = 0.3;
    const double avg_rate =
        PoissonArrival::rateForUtilization(rho, 20, 4, 0.005);
    const Tick duration = 60 * sec;
    std::printf("== Ablation: delay timer under bursty (MMPP) "
                "arrivals, avg rate %.0f jobs/s ==\n",
                avg_rate);
    std::printf("%-18s  %10s  %9s  %9s\n", "arrivals", "energy_J",
                "mean_ms", "p99_ms");

    Rng rng(27, "poisson");
    BurstResult poisson =
        runOnce(std::make_unique<PoissonArrival>(avg_rate, rng),
                duration);
    std::printf("%-18s  %10.0f  %9.2f  %9.2f\n", "Poisson",
                poisson.energy, poisson.mean_ms, poisson.p99_ms);

    for (double ra : {5.0, 20.0, 50.0}) {
        // 20% of time bursty: rate_h/rate_l chosen to keep the
        // average at avg_rate with ratio Ra.
        double p_high = 0.2;
        double rate_low =
            avg_rate / (p_high * ra + (1.0 - p_high));
        double rate_high = ra * rate_low;
        auto mmpp = std::make_unique<Mmpp2Arrival>(
            rate_high, rate_low, 2.0, 8.0, Rng(27, "mmpp"));
        BurstResult r = runOnce(std::move(mmpp), duration);
        std::printf("MMPP Ra=%-10.0f  %10.0f  %9.2f  %9.2f\n", ra,
                    r.energy, r.mean_ms, r.p99_ms);
    }
    std::printf("expected: p99 grows with Ra while energy stays "
                "comparable -- the paper's footnote 1.\n");
    return 0;
}
