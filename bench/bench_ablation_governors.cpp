/**
 * @file
 * Ablation: the two remaining Table I power knobs -- per-core DVFS
 * and switch adaptive link rate.
 *
 * (a) DVFS: the same light load run ungoverned (race-to-idle at P0)
 *     and governed, under a high-uncore profile (E5-2680 defaults)
 *     and a low-uncore profile. Expected: DVFS saves CPU energy only
 *     when core power dominates; with a 10 W uncore, race-to-idle
 *     wins -- a modeling subtlety the simulator reproduces instead of
 *     assuming away.
 *
 * (b) ALR: a star fabric under light periodic traffic with and
 *     without the ALR controller. Expected: reduced port rates cut
 *     switch energy a further step below LPI-only operation while
 *     the offered load still fits the reduced rate.
 */

#include <cstdio>
#include <memory>

#include "network/alr.hh"
#include "server/dvfs.hh"
#include "server/server.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

Joules
dvfsRun(const ServerPowerProfile &prof, bool governed)
{
    Simulator sim;
    ServerConfig cfg;
    Server server(sim, cfg, prof);
    std::unique_ptr<DvfsGovernor> gov;
    if (governed) {
        DvfsConfig dcfg;
        dcfg.interval = 5 * msec;
        gov = std::make_unique<DvfsGovernor>(server, dcfg);
        gov->start();
    }
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 50; ++i) {
        auto ev = std::make_unique<EventFunctionWrapper>(
            [&] { server.submit(TaskRef{0, 0, 10 * msec, 1.0, 0}); },
            "arrival");
        sim.schedule(*ev, 20 * msec + i * 100 * msec);
        events.push_back(std::move(ev));
    }
    sim.run();
    if (gov)
        gov->stop();
    server.finishStats();
    return server.energy().cpu;
}

Joules
alrRun(bool with_alr, bool with_lpi)
{
    Simulator sim;
    auto prof = SwitchPowerProfile::cisco2960_24();
    if (!with_lpi)
        prof.lpiIdleThreshold = maxTick; // pre-802.3az hardware
    Network net(sim, Topology::star(8, 1e9, 5 * usec), prof);
    std::unique_ptr<AlrController> alr;
    if (with_alr) {
        alr = std::make_unique<AlrController>(sim, net, AlrConfig{});
        alr->start();
    }
    // Light periodic traffic: one 15 kB message between a rotating
    // pair every 10 ms keeps ports from sleeping but far below even
    // the reduced rate.
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 500; ++i) {
        auto ev = std::make_unique<EventFunctionWrapper>(
            [&net, i] {
                net.sendBulk(i % 8, (i + 3) % 8, 15'000,
                             [](std::uint64_t) {});
            },
            "traffic");
        sim.schedule(*ev, static_cast<Tick>(i) * 10 * msec);
        events.push_back(std::move(ev));
    }
    sim.runUntil(5 * sec);
    if (alr)
        alr->stop();
    sim.run();
    net.finishStats();
    return net.switchEnergy();
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Ablation: DVFS governor (50 sparse 10 ms tasks) "
                "==\n");
    ServerPowerProfile high_uncore; // E5-2680 defaults: 10 W uncore
    ServerPowerProfile low_uncore;
    low_uncore.pkgPc0 = 1.5;
    low_uncore.pkgPc2 = 1.0;
    low_uncore.pkgPc6 = 0.2;
    struct Case {
        const char *name;
        const ServerPowerProfile &prof;
    } cases[] = {{"high-uncore (10 W)", high_uncore},
                 {"low-uncore (1.5 W)", low_uncore}};
    std::printf("%-20s  %10s  %10s  %8s\n", "profile", "raceIdle_J",
                "dvfs_J", "saving");
    for (const Case &c : cases) {
        Joules plain = dvfsRun(c.prof, false);
        Joules governed = dvfsRun(c.prof, true);
        std::printf("%-20s  %10.2f  %10.2f  %7.1f%%\n", c.name, plain,
                    governed, 100.0 * (1.0 - governed / plain));
    }
    std::printf("expected: DVFS wins only when core power dominates "
                "(low uncore); otherwise race-to-idle wins.\n\n");

    std::printf("== Ablation: adaptive link rate (light periodic "
                "traffic, 5 s) ==\n");
    Joules nothing = alrRun(false, false);
    Joules alr_only = alrRun(true, false);
    Joules lpi_only = alrRun(false, true);
    Joules both = alrRun(true, true);
    std::printf("no LPI, no ALR : %6.1f J (baseline)\n", nothing);
    std::printf("ALR only       : %6.1f J (%.1f%% vs baseline)\n",
                alr_only, 100.0 * (1.0 - alr_only / nothing));
    std::printf("LPI only       : %6.1f J (%.1f%% vs baseline)\n",
                lpi_only, 100.0 * (1.0 - lpi_only / nothing));
    std::printf("LPI + ALR      : %6.1f J (%.1f%% vs baseline)\n",
                both, 100.0 * (1.0 - both / nothing));
    std::printf("expected: ALR helps pre-802.3az hardware; with LPI "
                "available, idle ports sleep instead and ALR adds "
                "little -- the historical reason LPI displaced "
                "ALR.\n");
    return 0;
}
