/**
 * @file
 * Reproduces paper Figure 8: servers' overall state residency under
 * the workload-adaptive energy-latency optimization framework, for
 * web search (5 ms) and web serving (120 ms) at utilization 0.1 to
 * 0.9.
 *
 * Expected shape: the Active fraction tracks the utilization, and
 * up to moderate utilization the non-active time is dominated by
 * the deepest state (system sleep), with small wake-up/idle/pkg-C6
 * slivers -- i.e. the framework coordinates a minimal set of busy
 * servers and suspends the rest.
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "sched/adaptive_policy.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

void
residencySweep(const char *name, Tick service, Tick duration)
{
    std::printf("-- %s (service %.0f ms), 10 x 10-core servers --\n",
                name, toSeconds(service) * 1e3);
    std::printf("rho   active  wakeup   idle   pkgC6  sysSleep\n");
    for (int r = 1; r <= 9; ++r) {
        double rho = r / 10.0;
        DataCenterConfig cfg;
        cfg.nServers = 10;
        cfg.nCores = 10;
        cfg.serverProfile = ServerPowerProfile::xeonE5_2680();
        cfg.seed = 8;
        DataCenter dc(cfg);

        AdaptiveConfig ac;
        // Thresholds around the core count pack the active pool to
        // (nearly) all cores before another server is woken, so the
        // fleet's active fraction tracks utilization.
        ac.wakeupThreshold = 13.0;
        ac.sleepThreshold = 9.0;
        ac.deepSleepAfter = 100 * msec;
        ac.transitionCooldown = 3 * sec;
        ac.initialActive = std::max(1, static_cast<int>(rho * 10) + 1);
        AdaptivePoolPolicy wasp(dc.scheduler(), ac);
        wasp.start();

        auto svc = std::make_shared<ExponentialService>(
            service, dc.makeRng("service"));
        SingleTaskGenerator jobs(svc);
        double lambda = PoissonArrival::rateForUtilization(
            rho, 10, 10, toSeconds(service));
        dc.pump(std::make_unique<PoissonArrival>(
                    lambda, dc.makeRng("arrivals")),
                jobs, static_cast<std::size_t>(-1), duration);
        dc.runUntil(duration);
        wasp.stop();
        dc.run();
        auto frac = dc.residency();
        std::printf("%.1f   %5.1f%%  %5.1f%%  %5.1f%%  %5.1f%%  "
                    "%6.1f%%\n",
                    rho, 100 * frac[0], 100 * frac[1], 100 * frac[2],
                    100 * frac[3], 100 * frac[4]);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Figure 8: state residency under the adaptive "
                "framework ==\n");
    residencySweep("web search", 5 * msec, 60 * sec);
    residencySweep("web serving", 120 * msec, 120 * sec);
    return 0;
}
