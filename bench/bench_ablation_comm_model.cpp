/**
 * @file
 * Ablation: packet-level vs flow-based communication (paper section
 * III-B models both granularities).
 *
 * A fixed transfer is sent between two fat-tree servers using (a)
 * one max-min-fair flow and (b) a train of MTU packets through the
 * store-and-forward ports. The transfer latencies should agree
 * closely (the same bytes cross the same links), while the packet
 * model costs orders of magnitude more simulation events -- the
 * accuracy/cost trade-off that motivates having both.
 */

#include <cstdio>
#include <memory>

#include "network/network.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

struct CommResult {
    double latency_s;
    std::uint64_t events;
};

CommResult
flowTransfer(Bytes bytes)
{
    Simulator sim;
    Network net(sim, Topology::fatTree(4, 1e9, 5 * usec),
                SwitchPowerProfile::cisco2960_24());
    Tick done_at = 0;
    net.startFlow(0, 15, bytes, [&] { done_at = sim.curTick(); });
    sim.run();
    return CommResult{toSeconds(done_at), sim.eventsProcessed()};
}

CommResult
packetTransfer(Bytes bytes)
{
    Simulator sim;
    Network net(sim, Topology::fatTree(4, 1e9, 5 * usec),
                SwitchPowerProfile::cisco2960_24());
    Tick done_at = 0;
    net.sendBulk(0, 15, bytes,
                 [&](std::uint64_t) { done_at = sim.curTick(); });
    sim.run();
    return CommResult{toSeconds(done_at), sim.eventsProcessed()};
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Ablation: flow-based vs packet-level transfer "
                "(fat-tree k=4, cross-pod) ==\n");
    std::printf("%12s  %10s  %12s  %10s  %12s  %9s\n", "bytes",
                "flow_s", "flow_events", "packet_s", "pkt_events",
                "lat_ratio");
    for (Bytes bytes : {100'000ull, 1'000'000ull, 10'000'000ull}) {
        CommResult f = flowTransfer(bytes);
        CommResult p = packetTransfer(bytes);
        std::printf("%12llu  %10.5f  %12llu  %10.5f  %12llu  %9.3f\n",
                    static_cast<unsigned long long>(bytes),
                    f.latency_s,
                    static_cast<unsigned long long>(f.events),
                    p.latency_s,
                    static_cast<unsigned long long>(p.events),
                    p.latency_s / f.latency_s);
    }
    std::printf("expected: latency ratio ~1 (same bytes, same "
                "bottleneck) at a far higher event cost for the "
                "packet model.\n");
    return 0;
}
