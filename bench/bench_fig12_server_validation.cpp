/**
 * @file
 * Reproduces paper Figure 12 (section V-A): server power
 * validation. The paper replays an NLANR web trace against a
 * physical 10-core Xeon E5-2680 (RAPL package power, C0/C6
 * enabled) and against HolDCSim, then compares the two power
 * traces; it reports a 0.22 W average difference (~1.3%) and a
 * ~1.5 W standard deviation attributed to OS background activity.
 *
 * Here the physical machine is a reference model: the same
 * simulated server plus the measured-residual process (DESIGN.md
 * section 3). The bench prints both 1 Hz power traces (snippet) and
 * the residual statistics.
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "dc/metrics.hh"
#include "dc/validation.hh"
#include "sim/logging.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

int
main()
{
    setQuiet(true);
    std::printf("== Figure 12: server power validation ==\n");

    DataCenterConfig cfg;
    cfg.nServers = 1;
    cfg.nCores = 10;
    // RAPL scope: package power only, as measured in the paper.
    cfg.serverProfile = ServerPowerProfile::xeonE5_2680RaplOnly();
    cfg.seed = 12;
    DataCenter dc(cfg);

    // NLANR-like web request arrivals, heavy-tailed service.
    NlanrTraceParams np;
    np.duration = 1000 * sec;
    np.baseRate = 600.0;
    auto arrivals = makeNlanrTrace(np, dc.makeRng("nlanr"));
    auto svc = std::make_shared<BoundedParetoService>(
        1.5, 1 * msec, 100 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(svc);
    dc.pumpTrace(std::move(arrivals), jobs);

    // 1 Hz samplers: the simulator trace and the "physical" trace.
    PhysicalPowerModel phys([&] { return dc.server(0).power(); },
                            serverMeasurementNoise(),
                            dc.makeRng("measurement"));
    GaugeSampler sim_trace(dc.sim(),
                           [&] { return dc.server(0).power(); },
                           1 * sec, "simPower");
    GaugeSampler phys_trace(dc.sim(), [&] { return phys.sample(); },
                            1 * sec, "physPower");
    sim_trace.start();
    phys_trace.start();
    dc.runUntil(np.duration);
    sim_trace.stop();
    phys_trace.stop();
    dc.run();

    auto cmp = compareTraces(phys_trace.series(), sim_trace.series());
    double sim_mean = sim_trace.mean();
    std::printf("samples            : %zu (1 Hz)\n", cmp.points);
    std::printf("simulated mean     : %.2f W\n", sim_mean);
    std::printf("physical mean      : %.2f W\n", phys_trace.mean());
    std::printf("avg difference     : %.2f W (%.1f%%)   "
                "[paper: 0.22 W, ~1.3%%]\n",
                cmp.meanDiff, 100.0 * cmp.meanDiff / sim_mean);
    std::printf("stddev of residual : %.2f W          "
                "[paper: ~1.5 W]\n",
                cmp.stddevDiff);

    std::printf("\ntrace snippet (100-110 s):\n");
    std::printf("time_s  physical_W  simulated_W\n");
    for (std::size_t i = 100; i < 110 &&
                              i < sim_trace.series().size();
         ++i) {
        std::printf("%6.0f  %10.2f  %11.2f\n",
                    toSeconds(phys_trace.series()[i].when),
                    phys_trace.series()[i].value,
                    sim_trace.series()[i].value);
    }
    return 0;
}
