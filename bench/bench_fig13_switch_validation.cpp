/**
 * @file
 * Reproduces paper Figures 13 and 14 (section V-B): switch power
 * validation. The paper connects 24 servers to one Cisco
 * WS-C2960-24-S (base 14.7 W, 0.23 W/port), replays a Wikipedia
 * trace under load-balanced scheduling for two hours, and compares
 * simulated vs measured switch power; it reports < 0.12 W average
 * difference with 0.04 W standard deviation, plus segments where
 * the physical switch sits slightly above the simulation (Fig 14b).
 *
 * The physical switch here is the reference-noise model of
 * DESIGN.md section 3. The bench prints the residual statistics and
 * two representative segments (the Figure 14 views).
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "dc/metrics.hh"
#include "dc/validation.hh"
#include "sim/logging.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

int
main()
{
    setQuiet(true);
    std::printf("== Figures 13/14: switch power validation ==\n");

    DataCenterConfig cfg;
    cfg.nServers = 24;
    cfg.nCores = 4;
    cfg.fabric = DataCenterConfig::Fabric::star;
    cfg.switchProfile = SwitchPowerProfile::cisco2960_24();
    cfg.dispatch = DataCenterConfig::Dispatch::leastLoaded;
    // Two-tier requests (front end -> backend) whose results cross
    // the switch, so port/line-card activity -- and hence switch
    // power -- tracks the offered load.
    cfg.taskAntiAffinity = true;
    cfg.seed = 13;
    DataCenter dc(cfg);

    // Wikipedia-like arrivals for a 2-hour window.
    const Tick duration = 7200 * sec;
    WikipediaTraceParams wp;
    wp.duration = duration;
    wp.baseRate = 40.0;
    wp.diurnalPeriod = 3600 * sec;
    wp.diurnalAmplitude = 0.5;
    auto arrivals = makeWikipediaTrace(wp, dc.makeRng("wiki"));
    auto front = std::make_shared<ExponentialService>(
        2 * msec, dc.makeRng("svc.front"));
    auto back = std::make_shared<ExponentialService>(
        10 * msec, dc.makeRng("svc.back"));
    ChainJobGenerator jobs({front, back}, {0, 0},
                           /*transfer_bytes=*/2'000'000);
    dc.pumpTrace(std::move(arrivals), jobs);

    Switch &sw = dc.network()->switchAt(0);
    PhysicalPowerModel phys([&] { return sw.power(); },
                            switchMeasurementNoise(),
                            dc.makeRng("measurement"));
    GaugeSampler sim_trace(dc.sim(), [&] { return sw.power(); },
                           1 * sec, "simSwitchPower");
    GaugeSampler phys_trace(dc.sim(), [&] { return phys.sample(); },
                            1 * sec, "physSwitchPower");
    sim_trace.start();
    phys_trace.start();
    dc.runUntil(duration);
    sim_trace.stop();
    phys_trace.stop();
    dc.run();

    auto cmp = compareTraces(phys_trace.series(), sim_trace.series());
    std::printf("samples            : %zu (1 Hz over %.0f min)\n",
                cmp.points, toSeconds(duration) / 60.0);
    std::printf("simulated mean     : %.2f W\n", sim_trace.mean());
    std::printf("physical mean      : %.2f W\n", phys_trace.mean());
    std::printf("avg difference     : %.3f W   [paper: < 0.12 W]\n",
                cmp.meanDiff);
    std::printf("stddev of residual : %.3f W   [paper: ~0.04 W]\n",
                cmp.stddevDiff);

    auto segment = [&](const char *title, std::size_t from_min) {
        std::printf("\n%s\n", title);
        std::printf("time_min  physical_W  simulated_W\n");
        for (std::size_t m = from_min; m < from_min + 10; m += 2) {
            std::size_t i = m * 60;
            if (i >= sim_trace.series().size())
                break;
            std::printf("%8zu  %10.2f  %11.2f\n", m,
                        phys_trace.series()[i].value,
                        sim_trace.series()[i].value);
        }
    };
    segment("segment 1 (80-100 min, Figure 14a view):", 80);
    segment("segment 2 (40-60 min, Figure 14b view):", 40);
    return 0;
}
