#!/bin/bash
# Build with ThreadSanitizer and exercise the experiment engine's
# thread pool: the test_exp suite (pool scheduling, nested submits,
# stealing, parallel Simulators) plus the engine acceptance bench and
# the event-kernel backend-equivalence smoke (calendar vs heap pop
# order must match under TSan too). The PDES suite runs as well --
# the window barrier, mailbox hand-off and cross-worker error plumbing
# in src/sim/pdes are exactly the code TSan exists for -- and the
# bench's --quick gate replays the pod cluster at 1/2/4 workers,
# failing if any parallel stats dump drifts from sequential. The
# fault-schedule explorer smoke runs its oracle fleet on the same
# thread pool, so its find -> shrink -> replay loop gets the TSan
# treatment too.
# Usage: bench/run_tsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DHOLDCSIM_TSAN=ON
cmake --build "$BUILD_DIR" -j \
    --target test_exp test_pdes test_mc bench_engine_parallel \
    bench_event_kernel

TSAN_OPTIONS=halt_on_error=1 "$BUILD_DIR"/tests/test_exp
TSAN_OPTIONS=halt_on_error=1 "$BUILD_DIR"/tests/test_pdes
TSAN_OPTIONS=halt_on_error=1 "$BUILD_DIR"/tests/test_mc \
    --gtest_filter='Explorer.*:Oracle.*'
TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD_DIR"/bench/bench_engine_parallel
TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD_DIR"/bench/bench_event_kernel --quick
