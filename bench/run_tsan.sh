#!/bin/bash
# Build with ThreadSanitizer and exercise the experiment engine's
# thread pool: the test_exp suite (pool scheduling, nested submits,
# stealing, parallel Simulators) plus the engine acceptance bench and
# the event-kernel backend-equivalence smoke (calendar vs heap pop
# order must match under TSan too).
# Usage: bench/run_tsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DHOLDCSIM_TSAN=ON
cmake --build "$BUILD_DIR" -j \
    --target test_exp bench_engine_parallel bench_event_kernel

TSAN_OPTIONS=halt_on_error=1 "$BUILD_DIR"/tests/test_exp
TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD_DIR"/bench/bench_engine_parallel
TSAN_OPTIONS=halt_on_error=1 \
    "$BUILD_DIR"/bench/bench_event_kernel --quick
