/**
 * @file
 * Engine microbenchmarks (google-benchmark): the "light-weight"
 * claim of the paper rests on raw event-queue and end-to-end engine
 * throughput, plus the cost of the hot model paths (RNG draws, flow
 * re-sharing, routing).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "network/flow_manager.hh"
#include "network/routing.hh"
#include "network/topology.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace holdcsim;

namespace {

/** Schedule/pop cycles through a queue preloaded with n events. */
void
BM_EventQueueChurn(benchmark::State &state)
{
    const int depth = static_cast<int>(state.range(0));
    Simulator sim;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    Tick t = 1;
    for (int i = 0; i < depth; ++i) {
        events.push_back(
            std::make_unique<EventFunctionWrapper>([] {}, "bm"));
        sim.schedule(*events.back(), t++);
    }
    std::size_t idx = 0;
    for (auto _ : state) {
        Event &ev = sim.eventQueue().pop();
        (void)ev;
        sim.eventQueue().schedule(*events[idx % events.size()], t++);
        ++idx;
    }
    // Drain before the events are destroyed.
    while (!sim.eventQueue().empty())
        sim.eventQueue().pop();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurn)->Arg(64)->Arg(4096)->Arg(262144);

/** Self-rescheduling event chain: pure engine dispatch rate. */
void
BM_EngineDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim;
        std::uint64_t count = 0;
        EventFunctionWrapper tick(
            [&] {
                if (++count < 1'000'000)
                    sim.scheduleAfter(tick, 1);
            },
            "tick");
        sim.schedule(tick, 0);
        state.ResumeTiming();
        sim.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_EngineDispatch)->Unit(benchmark::kMillisecond);

void
BM_RngExponential(benchmark::State &state)
{
    Rng rng(1, "bm");
    double acc = 0.0;
    for (auto _ : state)
        acc += rng.exponential(1.0);
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void
BM_FatTreeRouting(benchmark::State &state)
{
    auto topo = Topology::fatTree(8, 1e9, 5 * usec);
    StaticRouting routing(topo);
    std::uint64_t key = 0;
    for (auto _ : state) {
        auto r = routing.route(topo.serverNode(key % 128),
                               topo.serverNode((key * 7 + 3) % 128),
                               key);
        benchmark::DoNotOptimize(r.links.data());
        ++key;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FatTreeRouting);

/** Cost of max-min re-sharing with n concurrent flows. */
void
BM_FlowReshare(benchmark::State &state)
{
    const int flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim;
        auto topo = Topology::fatTree(4, 1e9, 5 * usec);
        StaticRouting routing(topo);
        FlowManager mgr(sim, topo);
        state.ResumeTiming();
        for (int i = 0; i < flows; ++i) {
            auto route = routing.route(
                topo.serverNode(i % 16),
                topo.serverNode((i * 5 + 3) % 16), i);
            mgr.startFlow(std::move(route), 1'000'000, [] {});
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowReshare)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
