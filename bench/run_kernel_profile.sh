#!/bin/bash
# Profile the DES kernel on the three-tier case study with both event
# queue backends (binary heap = before, calendar = after) and run the
# event-kernel microbenchmark; leave everything in BENCH_kernel.json
# at the repo root:
#   <profile fields>            kernel profile of the calendar run
#   events_per_host_sec_before  three-tier replay rate, binary heap
#   events_per_host_sec_after   three-tier replay rate, calendar
#   microbench                  hold/churn/replay numbers (with
#                               calendar-vs-heap speedups) from
#                               bench_event_kernel
# Usage: bench/run_kernel_profile.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_kernel.json"

if [ ! -d "$BUILD_DIR" ]; then
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target three_tier bench_event_kernel

"$BUILD_DIR"/examples/three_tier --profile=profile_heap.json.tmp \
    --queue=heap
"$BUILD_DIR"/examples/three_tier --profile=profile_cal.json.tmp \
    --queue=calendar
# The microbench exits nonzero if the two backends ever pop in a
# different order or the replay stats differ by a single bit.
"$BUILD_DIR"/bench/bench_event_kernel --json=kernel_micro.json.tmp

python3 - "$OUT" <<'PYEOF'
import json, sys
heap = json.load(open('profile_heap.json.tmp'))
cal = json.load(open('profile_cal.json.tmp'))
micro = json.load(open('kernel_micro.json.tmp'))
out = dict(cal)
out['events_per_host_sec_before'] = heap['events_per_sec']
out['events_per_host_sec_after'] = cal['events_per_sec']
out['microbench'] = micro
with open(sys.argv[1], 'w') as f:
    json.dump(out, f, indent=2)
    f.write('\n')
print('three-tier events/s host: heap %.0f -> calendar %.0f' %
      (heap['events_per_sec'], cal['events_per_sec']))
print('churn microbench speedup: %.2fx' % micro['churn']['speedup'])
PYEOF
rm -f profile_heap.json.tmp profile_cal.json.tmp kernel_micro.json.tmp
echo "kernel profile written to $OUT"
