#!/bin/sh
# Profile the DES kernel on the three-tier case study and leave the
# summary (events/sec, events by type, peak queue depth) in
# BENCH_kernel.json at the repo root.
# Usage: bench/run_kernel_profile.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_kernel.json"

if [ ! -d "$BUILD_DIR" ]; then
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target three_tier

"$BUILD_DIR"/examples/three_tier --profile="$OUT"
echo "kernel profile written to $OUT"
