#!/bin/bash
# Profile the DES kernel on the three-tier case study with both event
# queue backends (binary heap = before, calendar = after) plus the
# shared-timer-wheel discipline, and run the event-kernel
# microbenchmark; leave everything in BENCH_kernel.json at the repo
# root:
#   <profile fields>            kernel profile of the calendar run
#   events_per_host_sec_before  three-tier replay rate, binary heap
#   events_per_host_sec_after   three-tier replay rate, calendar
#   wheel_replay                coarse-wheel three-tier run: governor
#                               events before/after, reduction factor,
#                               profile.wheel.* counters
#   microbench                  hold/churn/replay/warehouse numbers
#                               (with calendar-vs-heap speedups) from
#                               bench_event_kernel, including the
#                               100k-server warehouse point
#   pdes                        pod-partitioned parallel kernel scaling
#                               (workers x events/s, window count,
#                               blocked fraction) with host_cpus
#                               recorded so the speedups can be read
#                               against the machine that produced them
# Usage: bench/run_kernel_profile.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_kernel.json"

if [ ! -d "$BUILD_DIR" ]; then
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target three_tier bench_event_kernel

"$BUILD_DIR"/examples/three_tier --profile=profile_heap.json.tmp \
    --queue=heap
"$BUILD_DIR"/examples/three_tier --profile=profile_cal.json.tmp \
    --queue=calendar
# Same fleet with the governor ladders on the shared wheel at a
# coarse 1 ms bucket: the per-core demotion and per-port LPI events
# collapse into shared boundary ticks.
"$BUILD_DIR"/examples/three_tier --profile=profile_wheel.json.tmp \
    --queue=calendar --timer-mode=wheel --wheel-granularity-us=1000
# The microbench exits nonzero if the two backends ever pop in a
# different order, the replay stats differ by a single bit, or the
# unit-granularity wheel diverges from per-event timers. Includes the
# 100k-server warehouse point.
"$BUILD_DIR"/bench/bench_event_kernel --json=kernel_micro.json.tmp

python3 - "$OUT" <<'PYEOF'
import json, sys
heap = json.load(open('profile_heap.json.tmp'))
cal = json.load(open('profile_cal.json.tmp'))
wheel = json.load(open('profile_wheel.json.tmp'))
micro = json.load(open('kernel_micro.json.tmp'))
out = dict(cal)
out['events_per_host_sec_before'] = heap['events_per_sec']
out['events_per_host_sec_after'] = cal['events_per_sec']

GOVERNOR = ('core.demotion', 'port.lpi')
before = sum(cal['events_by_type'].get(k, {}).get('count', 0)
             for k in GOVERNOR)
ticks = wheel['events_by_type'].get('wheel.tick', {}).get('count', 0)
out['wheel_replay'] = {
    'granularity_us': 1000,
    'events_per_sec': wheel['events_per_sec'],
    'events_total': wheel['events_total'],
    'governor_events_before': before,
    'wheel_tick_events': ticks,
    'governor_event_reduction': (before / ticks) if ticks else None,
    'timer_wheel': wheel.get('timer_wheel'),
}
out['microbench'] = micro
# Promote the parallel-kernel scaling run to a top-level section:
# it is the headline number of the PDES work, not a queue-backend
# microbenchmark detail.
out['pdes'] = micro.pop('pdes')
with open(sys.argv[1], 'w') as f:
    json.dump(out, f, indent=2)
    f.write('\n')
print('three-tier events/s host: heap %.0f -> calendar %.0f' %
      (heap['events_per_sec'], cal['events_per_sec']))
print('churn microbench speedup: %.2fx' % micro['churn']['speedup'])
print('governor events: %d -> %d wheel ticks (%.1fx reduction)' %
      (before, ticks, before / ticks if ticks else float('nan')))
wh = micro['warehouse']
print('warehouse %dx4 cores: %.2fs events-mode -> %.2fs wheel' %
      (wh['servers'], wh['events_mode_wall_seconds'],
       wh['wheel_wall_seconds']))
p = out['pdes']
print('pdes (%d pods, host_cpus=%d): sequential %.0f ev/s; ' %
      (p['pods'], p['host_cpus'], p['sequential_events_per_sec']) +
      ', '.join('%dw %.2fx (blocked %.0f%%)' %
                (w['workers'], w['speedup'],
                 100 * w['blocked_fraction'])
                for w in p['workers']))
PYEOF
rm -f profile_heap.json.tmp profile_cal.json.tmp \
    profile_wheel.json.tmp kernel_micro.json.tmp
echo "kernel profile written to $OUT"
