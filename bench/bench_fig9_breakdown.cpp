/**
 * @file
 * Reproduces paper Figure 9: per-server energy breakdown (CPU /
 * DRAM / platform) for ten 10-core servers under (a) delay-timer
 * power management and (b) the workload-adaptive sleep policy.
 *
 * Expected shape: the delay-timer farm spreads energy almost
 * uniformly across servers (load balancing keeps them all warm),
 * while the adaptive policy concentrates work on a small subset and
 * keeps the rest in deep sleep, cutting total energy substantially
 * (the paper reports 39%).
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "sched/adaptive_policy.hh"
#include "sim/logging.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

using namespace holdcsim;

namespace {

FleetEnergy
runOnce(bool adaptive)
{
    DataCenterConfig cfg;
    cfg.nServers = 10;
    cfg.nCores = 10;
    cfg.serverProfile = ServerPowerProfile::xeonE5_2680();
    cfg.seed = 9;
    if (!adaptive) {
        cfg.controller = DataCenterConfig::Controller::delayTimer;
        cfg.delayTimerTau = 1 * sec;
    }
    DataCenter dc(cfg);

    std::unique_ptr<AdaptivePoolPolicy> wasp;
    if (adaptive) {
        AdaptiveConfig ac;
        ac.wakeupThreshold = 7.0;
        ac.sleepThreshold = 3.0;
        ac.deepSleepAfter = 100 * msec;
        ac.initialActive = 2;
        wasp = std::make_unique<AdaptivePoolPolicy>(dc.scheduler(),
                                                    ac);
        wasp->start();
    }

    // Wikipedia-like fluctuating arrivals (web search service).
    WikipediaTraceParams wp;
    wp.duration = 120 * sec;
    wp.baseRate = 0.15 * 10 * 10 / 0.005; // ~15% mean utilization
    wp.diurnalPeriod = 60 * sec;
    auto arrivals = makeWikipediaTrace(wp, dc.makeRng("wiki"));
    auto svc = std::make_shared<ExponentialService>(
        5 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(svc);
    dc.pumpTrace(std::move(arrivals), jobs);
    dc.runUntil(wp.duration);
    if (wasp)
        wasp->stop();
    dc.run();
    dc.finishStats();
    return dc.energy();
}

void
print(const char *title, const FleetEnergy &e)
{
    std::printf("-- %s --\n", title);
    std::printf("server   cpu_J    dram_J   platform_J  total_J\n");
    for (std::size_t i = 0; i < e.perServer.size(); ++i) {
        std::printf("  %2zu   %7.0f   %6.0f   %9.0f   %7.0f\n", i,
                    e.perServer[i].cpu, e.perServer[i].dram,
                    e.perServer[i].platform, e.perServer[i].total());
    }
    std::printf("total  %7.0f   %6.0f   %9.0f   %7.0f\n",
                e.total.cpu, e.total.dram, e.total.platform,
                e.total.total());
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Figure 9: per-server energy breakdown ==\n");
    FleetEnergy timer = runOnce(false);
    FleetEnergy adaptive = runOnce(true);
    print("delay-timer based power management", timer);
    print("workload-adaptive sleep policy", adaptive);
    std::printf("adaptive saving over delay-timer: %.1f%%\n",
                100.0 *
                    (1.0 - adaptive.total.total() /
                               timer.total.total()));
    return 0;
}
