/**
 * @file
 * Shared helpers for the figure/table reproduction benches: a
 * canonical server-farm experiment runner and result record.
 *
 * Workload naming follows the paper: "web search" is the
 * short-service workload (5 ms) and "web serving" the long-service
 * one (120 ms); case study IV-B labels them Google and Apache in
 * Figure 6.
 */

#ifndef HOLDCSIM_BENCH_COMMON_HH
#define HOLDCSIM_BENCH_COMMON_HH

#include <memory>
#include <string>

#include "dc/datacenter.hh"
#include "workload/service.hh"
#include "workload/trace.hh"

namespace holdcsim::bench {

/** Outcome of one server-farm run. */
struct FarmResult {
    Joules energy = 0.0;
    double meanLatencySec = 0.0;
    double p90Sec = 0.0;
    double p95Sec = 0.0;
    double p99Sec = 0.0;
    std::uint64_t jobs = 0;
    double simSeconds = 0.0;
};

/** Parameters of the canonical single-task-job farm experiment. */
struct FarmParams {
    unsigned nServers = 50;
    unsigned nCores = 4;
    /** Mean service time of the exponential service distribution. */
    Tick serviceTime = 5 * msec;
    /** Target utilization (sets the Poisson arrival rate). */
    double rho = 0.3;
    /** Simulated duration of the measured window. */
    Tick duration = 60 * sec;
    /** Delay-timer tau; maxTick = Active-Idle baseline. */
    Tick tau = maxTick;
    std::uint64_t seed = 1;
};

/**
 * Build the diurnal (Wikipedia-like) arrival trace the delay-timer
 * case studies run on: mean rate matching the target utilization,
 * with pronounced peaks and deep troughs so idle gaps are bimodal
 * (short within the busy phase, long in the quiet phase) -- the
 * regime where an interior optimal tau exists.
 */
inline std::vector<Tick>
makeDiurnalArrivals(const FarmParams &p)
{
    WikipediaTraceParams wp;
    wp.duration = p.duration;
    wp.baseRate = PoissonArrival::rateForUtilization(
        p.rho, p.nServers, p.nCores, toSeconds(p.serviceTime));
    wp.diurnalAmplitude = 1.1; // slightly clipped: quiet troughs
    wp.diurnalPeriod = p.duration / 2;
    wp.noiseLevel = 0.1;
    wp.burstProbability = 0.0;
    return makeWikipediaTrace(wp, Rng(p.seed, "diurnal"));
}

/** Run the canonical experiment on an explicit arrival trace. */
inline FarmResult
runFarmWithArrivals(const FarmParams &p, std::vector<Tick> arrivals)
{
    DataCenterConfig cfg;
    cfg.nServers = p.nServers;
    cfg.nCores = p.nCores;
    cfg.seed = p.seed;
    if (p.tau == maxTick) {
        cfg.controller = DataCenterConfig::Controller::alwaysOn;
    } else {
        cfg.controller = DataCenterConfig::Controller::delayTimer;
        cfg.delayTimerTau = p.tau;
    }
    DataCenter dc(cfg);

    auto service = std::make_shared<ExponentialService>(
        p.serviceTime, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    dc.pumpTrace(std::move(arrivals), jobs);
    dc.runUntil(p.duration);
    dc.run();
    dc.finishStats();

    FarmResult r;
    r.energy = dc.energy().total.total();
    const auto &lat = dc.scheduler().jobLatency();
    r.meanLatencySec = lat.mean();
    r.p90Sec = lat.p90();
    r.p95Sec = lat.p95();
    r.p99Sec = lat.p99();
    r.jobs = dc.scheduler().jobsCompleted();
    r.simSeconds = toSeconds(dc.sim().curTick());
    return r;
}

/** Run the canonical experiment and collect energy + latency. */
inline FarmResult
runFarm(const FarmParams &p)
{
    DataCenterConfig cfg;
    cfg.nServers = p.nServers;
    cfg.nCores = p.nCores;
    cfg.seed = p.seed;
    if (p.tau == maxTick) {
        cfg.controller = DataCenterConfig::Controller::alwaysOn;
    } else {
        cfg.controller = DataCenterConfig::Controller::delayTimer;
        cfg.delayTimerTau = p.tau;
    }
    DataCenter dc(cfg);

    auto service = std::make_shared<ExponentialService>(
        p.serviceTime, dc.makeRng("service"));
    SingleTaskGenerator jobs(service);
    double lambda = PoissonArrival::rateForUtilization(
        p.rho, p.nServers, p.nCores, toSeconds(p.serviceTime));
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, static_cast<std::size_t>(-1), p.duration);
    dc.runUntil(p.duration);
    dc.run(); // drain in-flight jobs
    dc.finishStats();

    FarmResult r;
    r.energy = dc.energy().total.total();
    const auto &lat = dc.scheduler().jobLatency();
    r.meanLatencySec = lat.mean();
    r.p90Sec = lat.p90();
    r.p95Sec = lat.p95();
    r.p99Sec = lat.p99();
    r.jobs = dc.scheduler().jobsCompleted();
    r.simSeconds = toSeconds(dc.sim().curTick());
    return r;
}

} // namespace holdcsim::bench

#endif // HOLDCSIM_BENCH_COMMON_HH
