/**
 * @file
 * Ablation: unified server queue versus per-core task queues
 * (paper section II, citing the tail-latency study of Li et
 * al. [37]).
 *
 * At moderate-to-high utilization with variable service times, a
 * unified queue lets any free core take the next task, while
 * per-core queues can leave a task stuck behind a long-running
 * neighbor even when other cores idle -- inflating tail latency.
 *
 * Expected shape: comparable mean latency at low load; per-core
 * queues show a visibly worse p99 as utilization grows.
 */

#include <cstdio>
#include <memory>

#include "dc/datacenter.hh"
#include "sim/logging.hh"
#include "workload/service.hh"

using namespace holdcsim;

namespace {

struct QueueResult {
    double mean_ms, p90_ms, p99_ms;
};

QueueResult
runOnce(LocalQueueMode mode, double rho)
{
    DataCenterConfig cfg;
    cfg.nServers = 10;
    cfg.nCores = 4;
    cfg.queueMode = mode;
    cfg.corePick = CorePickPolicy::roundRobin;
    cfg.seed = 21;
    DataCenter dc(cfg);

    // Heavy-tailed service: the worst case for head-of-line
    // blocking behind a long task.
    auto svc = std::make_shared<BoundedParetoService>(
        1.5, 1 * msec, 500 * msec, dc.makeRng("service"));
    SingleTaskGenerator jobs(svc);
    double lambda = PoissonArrival::rateForUtilization(
        rho, 10, 4, svc->meanSeconds());
    dc.pump(std::make_unique<PoissonArrival>(lambda,
                                             dc.makeRng("arrivals")),
            jobs, 60'000);
    dc.run();
    const auto &lat = dc.scheduler().jobLatency();
    return QueueResult{lat.mean() * 1e3, lat.p90() * 1e3,
                       lat.p99() * 1e3};
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Ablation: unified vs per-core local queues "
                "(heavy-tailed service) ==\n");
    std::printf("rho   queue     mean_ms   p90_ms    p99_ms\n");
    for (double rho : {0.3, 0.6, 0.8}) {
        QueueResult uni = runOnce(LocalQueueMode::unified, rho);
        QueueResult per = runOnce(LocalQueueMode::perCore, rho);
        std::printf("%.1f   unified   %7.2f  %7.2f  %8.2f\n", rho,
                    uni.mean_ms, uni.p90_ms, uni.p99_ms);
        std::printf("%.1f   per-core  %7.2f  %7.2f  %8.2f\n", rho,
                    per.mean_ms, per.p90_ms, per.p99_ms);
        std::printf("      p99 inflation from per-core queues: "
                    "%.1fx\n",
                    per.p99_ms / uni.p99_ms);
    }
    return 0;
}
