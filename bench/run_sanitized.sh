#!/bin/bash
# Configure, build and run the full test suite under ASan + UBSan.
# Usage: bench/run_sanitized.sh [build-dir]
# Any additional diagnostics (leaks, UB) fail the run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DHOLDCSIM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
